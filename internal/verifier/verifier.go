// Package verifier implements the Karousos audit (paper §4, Appendix C.1.4):
// given the trusted trace and the untrusted advice, it decides whether the
// responses in the trace could have been produced by executing the program
// on the requests in the trace.
//
// The audit has the three phases of Figure 14:
//
//   - Preprocess: structural validation of the advice and construction of
//     the execution graph G — time-precedence edges from the trace, program
//     and boundary edges from opcounts/responseEmittedBy, handler-log edges
//     and activation edges (Figure 16), external-state read-from edges, and
//     the provisional isolation-level verification over the alleged
//     transaction history (Figure 17, via the adya package).
//
//   - ReExec: grouped re-execution (Figure 18). Requests with equal tags
//     replay together through multivalues; handler and state operations are
//     checked against the logs (Figure 19); annotated variable operations
//     replay through variable logs and per-variable version dictionaries
//     (Figures 20–21), building read_observers/write_observer chains.
//
//   - Postprocess: internal-state WR/WW/RW edges are embedded into G
//     (Figure 21's AddInternalStateEdges) and the audit accepts iff G is
//     acyclic and every log entry was consumed by re-execution.
//
// Any failed check rejects the audit; rejection reasons are wrapped in
// core.Reject and surfaced as the returned error.
package verifier

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier/memo"
)

// Config configures an audit.
type Config struct {
	// App must be a fresh instance of the same application the server ran.
	App *core.App
	// Mode selects Karousos or Orochi-JS replay semantics; it must match
	// the advice's mode.
	Mode advice.Mode
	// Isolation is the isolation level the transactional store is expected
	// to provide (§4.4); ignored when the application uses no store.
	Isolation adya.Level
	// DumpGraph, when non-nil, receives the execution graph G in Graphviz
	// DOT format after Postprocess — with the offending cycle highlighted
	// when the audit rejects on acyclicity. Debugging aid; not on the hot
	// path of a passing audit's checks.
	DumpGraph io.Writer
	// Limits bounds what the audit may consume; the zero value is
	// unbounded (see DefaultLimits for production bounds). Exceeding a
	// bound rejects with ResourceLimit.
	Limits Limits
	// Carry is the verified server state at the start of this epoch (nil
	// for a whole-history audit or the first epoch). It comes from the
	// auditor's own previous accepting audit — trusted input, like the
	// trace — and is injected as synthetic init-level state so this epoch's
	// unlogged reads and reads-from references resolve against prior
	// epochs. See CarryState.
	Carry *CarryState
	// Workers is the audit's parallelism: preprocess edge phases and group
	// re-execution fan out over this many goroutines, with effects merged
	// deterministically so the verdict, reject code, and Stats are
	// bit-identical to a sequential run (DESIGN.md §13). 0 means
	// GOMAXPROCS; 1 forces the sequential engine.
	Workers int
	// Memo, when non-nil, enables cross-epoch deduplicated re-execution
	// (DESIGN.md §18): tag groups whose full input closure digests to a
	// cached key replay their recorded effect set instead of re-executing.
	// The cache outlives individual audits — the auditor threads one cache
	// through an epoch sequence and must Reset it at Fresh boundaries,
	// exactly like it drops Carry. Verdicts, reject codes, and all
	// non-memo Stats are bit-identical with and without a cache.
	Memo *memo.Cache
}

// node kinds of the execution graph G.
const (
	kReq  uint8 = iota // (rid, 0): request arrival
	kResp              // (rid, ∞): response delivery
	kOp                // (rid, hid, i): the i-th operation (0 = handler start)
	kHEnd              // (rid, hid, ∞): handler exit
	kBar               // time-precedence barrier between trace positions
)

// gnode is a node of G.
type gnode struct {
	kind uint8
	rid  core.RID
	hid  core.HID
	op   int
}

func reqNode(rid core.RID) gnode  { return gnode{kind: kReq, rid: rid} }
func respNode(rid core.RID) gnode { return gnode{kind: kResp, rid: rid} }
func opNode(rid core.RID, hid core.HID, i int) gnode {
	return gnode{kind: kOp, rid: rid, hid: hid, op: i}
}
func hEndNode(rid core.RID, hid core.HID) gnode { return gnode{kind: kHEnd, rid: rid, hid: hid} }
func barNode(i int) gnode                       { return gnode{kind: kBar, op: i} }

// opLoc locates an operation inside the logs (Figure 14's OpMap).
type opLoc struct {
	isTx bool
	// handler-log location: index into HandlerLogs[rid].
	rid core.RID
	// tx-log location.
	tid core.TxID
	idx int // 1-based for tx logs, 0-based for handler logs
}

type txRef struct {
	rid core.RID
	tid core.TxID
}

type lmKey struct {
	rid core.RID
	tid core.TxID
	key string
}

type regEntry struct {
	event core.EventName
	fn    core.FunctionID
}

// Verifier holds all audit state. A Verifier performs one audit and is then
// discarded.
type Verifier struct {
	cfg Config
	tr  *trace.Trace
	adv *advice.Advice

	// ctx carries the audit deadline / cancellation; pollN drives the
	// periodic budget checks (see limits.go).
	ctx   context.Context
	pollN int

	// eg is the interned execution graph; buildLayout creates it once the
	// trace and advice are known.
	eg *egraph

	inTrace map[core.RID]bool
	inputs  map[core.RID]value.V
	outputs map[core.RID]value.V

	opMap     map[core.Op]opLoc
	activated map[core.Op]map[core.HID]bool // emit op → activated hids

	txIndex   map[txRef]*advice.TxLog
	committed map[txRef]bool
	readMap   map[advice.TxPos][]advice.TxPos
	lastMod   map[lmKey]int
	inWO      map[advice.TxPos]bool

	globalHandlers []regEntry
	requestFns     []core.FunctionID

	vars       map[core.VarID]*vvar
	rawVarLogs map[core.VarID]map[core.Op]*advice.VarLogEntry
	nondet     map[core.Op]value.V

	// carryTx resolves TxPos references into carried prior-epoch writes;
	// woPerKey keeps the verified per-key write order for carryOut.
	carryTx  map[advice.TxPos]*advice.TxOp
	woPerKey map[string][]advice.TxPos

	// consumption tracking: re-execution must account for every log entry.
	opConsumed map[core.Op]bool

	executed  map[core.RID]map[core.HID]bool
	responded map[core.RID]bool

	// memoPending holds effect sets captured during reExec awaiting the
	// publish-after-accept boundary (memo.go).
	memoPending []memoCandidate

	// Stats are filled in as the audit runs, for the evaluation harness.
	Stats Stats
}

// Stats reports audit-side quantities the experiments record.
//
// The memo counters are the one deliberate asymmetry in the engine's
// bit-identity story: at a FIXED memo configuration they are deterministic
// at every worker count (all cache traffic is coordinator-side, memo.go),
// but they necessarily differ between memo-on and memo-off runs.
// Cross-memo differential comparisons normalize them with ZeroMemo.
type Stats struct {
	Groups        int
	Requests      int
	GraphNodes    int
	GraphEdges    int
	HandlersRerun int
	// MemoHits / MemoMisses count tag groups replayed from the memo cache
	// vs re-executed cold; MemoEvictions counts entries the published
	// candidates displaced. All zero when no cache is configured.
	MemoHits      int
	MemoMisses    int
	MemoEvictions int
}

// Add accumulates another audit's work counters into s — how multi-epoch
// and multi-shard pipelines sum per-audit Stats into one comparable total.
func (s *Stats) Add(o Stats) {
	s.Groups += o.Groups
	s.Requests += o.Requests
	s.GraphNodes += o.GraphNodes
	s.GraphEdges += o.GraphEdges
	s.HandlersRerun += o.HandlersRerun
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.MemoEvictions += o.MemoEvictions
}

// ZeroMemo returns s with the memo counters cleared — the normalization
// differential tests apply before comparing a memo-on run against a
// memo-off run, whose every OTHER field must match bit-for-bit.
func (s Stats) ZeroMemo() Stats {
	s.MemoHits, s.MemoMisses, s.MemoEvictions = 0, 0, 0
	return s
}

// New builds a verifier for one audit.
func New(cfg Config) *Verifier {
	return &Verifier{
		cfg:        cfg,
		inTrace:    make(map[core.RID]bool),
		inputs:     make(map[core.RID]value.V),
		outputs:    make(map[core.RID]value.V),
		opMap:      make(map[core.Op]opLoc),
		activated:  make(map[core.Op]map[core.HID]bool),
		txIndex:    make(map[txRef]*advice.TxLog),
		committed:  make(map[txRef]bool),
		readMap:    make(map[advice.TxPos][]advice.TxPos),
		lastMod:    make(map[lmKey]int),
		inWO:       make(map[advice.TxPos]bool),
		vars:       make(map[core.VarID]*vvar),
		nondet:     make(map[core.Op]value.V),
		opConsumed: make(map[core.Op]bool),
		executed:   make(map[core.RID]map[core.HID]bool),
		responded:  make(map[core.RID]bool),
	}
}

// Audit runs the full audit of Figure 14 and returns nil iff the verifier
// accepts the (trace, advice) pair. Every rejection is a core.Reject with a
// machine-readable code; Audit never panics on hostile advice (a non-Reject
// panic is contained into an InternalFault rejection).
func Audit(cfg Config, tr *trace.Trace, adv *advice.Advice) (Stats, error) {
	return AuditContext(context.Background(), cfg, tr, adv)
}

// AuditContext is Audit under a caller-supplied context: the audit rejects
// with ResourceLimit at its next cancellation check once ctx is done. When
// cfg.Limits.Deadline is set, it is applied on top of ctx.
func AuditContext(ctx context.Context, cfg Config, tr *trace.Trace, adv *advice.Advice) (Stats, error) {
	st, _, err := auditFull(ctx, cfg, tr, adv, false)
	return st, err
}

// AuditCarry audits one epoch and, when it accepts, additionally returns
// the verified end-state to thread into the next epoch's Config.Carry. It
// is AuditContext plus carry extraction; the extraction runs inside the
// same panic-containment boundary.
func AuditCarry(ctx context.Context, cfg Config, tr *trace.Trace, adv *advice.Advice) (Stats, *CarryState, error) {
	return auditFull(ctx, cfg, tr, adv, true)
}

func auditFull(ctx context.Context, cfg Config, tr *trace.Trace, adv *advice.Advice, wantCarry bool) (st Stats, carry *CarryState, err error) {
	if cfg.Limits.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Limits.Deadline)
		defer cancel()
	}
	v := New(cfg)
	v.ctx = ctx
	defer func() {
		if r := recover(); r != nil {
			st, carry = v.Stats, nil
			if rej, ok := r.(core.Reject); ok {
				err = rej
				return
			}
			// The advice is untrusted; a panic it provoked must not take
			// down the audit process. Contain it as a coded rejection with
			// the stack attached — an InternalFault is also a verifier bug.
			err = core.Reject{
				Code:   core.RejectInternalFault,
				Reason: fmt.Sprintf("verifier panicked: %v", r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	if adv.Mode != cfg.Mode {
		return v.Stats, nil, core.Reject{
			Code:   core.RejectMalformedAdvice,
			Reason: fmt.Sprintf("advice mode %q does not match configured mode %q", adv.Mode, cfg.Mode),
		}
	}
	v.tr = tr
	v.adv = adv
	v.preprocess()
	v.reExec()
	v.postprocess()
	if wantCarry {
		carry = v.carryOut()
	}
	// Only now — after postprocess accepted and carry extracted — do the
	// captured effect sets become reachable by future epochs' keys: no
	// entry recorded from a rejecting audit ever enters the cache.
	v.memoPublish()
	return v.Stats, carry, nil
}

// preprocess implements Figure 14's Preprocess.
func (v *Verifier) preprocess() {
	if err := v.tr.CheckBalanced(); err != nil {
		core.Rejectf("%v", err)
	}
	for _, e := range v.tr.Events {
		rid := core.RID(e.RID)
		v.inTrace[rid] = true
		if e.Kind == trace.Req {
			v.inputs[rid] = e.Data
		} else {
			v.outputs[rid] = e.Data
		}
	}
	v.Stats.Requests = len(v.inputs)

	v.buildVarLogIndex()
	v.runInit()
	v.injectCarry()
	v.checkVarLogsKnown()
	v.buildNondetIndex()
	v.buildLayout()
	v.preprocessEdges()
}

// runInit executes the application's initialization function determinis-
// tically at the verifier (Figure 14 line 20), populating global handlers
// and variable state.
func (v *Verifier) runInit() {
	io := &initOps{v: v}
	if v.cfg.App.Init != nil {
		ictx := core.NewContext(io, []core.RID{core.InitRID}, core.InitHID, "", "", core.InitLabel)
		v.cfg.App.Init(ictx)
	}
	io.done = true
	for _, re := range v.globalHandlers {
		if re.event == v.cfg.App.RequestEvent {
			v.requestFns = append(v.requestFns, re.fn)
		}
	}
	if len(v.requestFns) == 0 {
		// Advice-independent: the configured application itself is unusable.
		core.RejectCodef(core.RejectInternalFault, "application registers no request handlers")
	}
}

func (v *Verifier) buildNondetIndex() {
	for _, e := range v.adv.Nondet {
		if _, dup := v.nondet[e.Op]; dup {
			core.Rejectf("duplicate nondet entry at %v", e.Op)
		}
		v.nondet[e.Op] = e.Value
	}
}

// addTimePrecedenceEdges builds Orochi's time-precedence graph with O(n)
// edges: a chain of barrier nodes follows the trace; each response points
// into the chain and each request is pointed at by the chain, so "response
// delivered before request arrived" facts are all present transitively.
func (v *Verifier) addTimePrecedenceEdges(s *esink) {
	eg := v.eg
	prevBar := -1
	for i, e := range v.tr.Events {
		rid := core.RID(e.RID)
		switch e.Kind {
		case trace.Req:
			s.addNode(eg.reqID(rid))
			if prevBar >= 0 {
				s.addEdge(eg.barID(prevBar), eg.reqID(rid))
			}
		case trace.Resp:
			bar := i
			if prevBar >= 0 {
				s.addEdge(eg.barID(prevBar), eg.barID(bar))
			}
			s.addEdge(eg.respID(rid), eg.barID(bar))
			prevBar = bar
		}
	}
}

// addProgramEdges implements Figure 14's AddProgramEdges: one node per
// operation of every advised handler activation, chained in program order.
// Validation already happened in buildLayout, so this phase is pure integer
// arithmetic over the slot table — the hottest preprocess loop runs with
// zero map lookups.
func (v *Verifier) addProgramEdges(s *esink) {
	for _, sl := range v.eg.slotList {
		hEnd := sl.base + uint32(sl.n) + 1
		s.addNode(sl.base)
		s.addNode(hEnd)
		for i := uint32(1); i <= uint32(sl.n); i++ {
			s.poll()
			s.addEdge(sl.base+i-1, sl.base+i)
		}
		s.addEdge(sl.base+uint32(sl.n), hEnd)
	}
}

// addBoundaryEdges implements Figure 15: request-start edges to request
// handlers, and response edges around the operation that delivered the
// response.
func (v *Verifier) addBoundaryEdges(s *esink) {
	eg := v.eg
	// Request handler hids are computable from the globally registered
	// request functions (hid = (fn, null, 0), Figure 18 line 11).
	reqHIDs := make(map[core.HID]bool, len(v.requestFns))
	for _, fn := range v.requestFns {
		reqHIDs[core.RequestHID(fn, v.cfg.App.RequestEvent)] = true
	}
	// slotList is ordered by (sorted rid, sorted hid) — the same nested
	// sorted iteration the map-keyed engine used.
	for _, sl := range eg.slotList {
		if reqHIDs[sl.hid] {
			s.addEdge(eg.reqID(sl.rid), sl.base)
		}
	}
	for _, rid := range sortedKeys(v.inputs) {
		at, ok := v.adv.ResponseEmittedBy[rid]
		if !ok {
			core.Rejectf("responseEmittedBy missing for %s", rid)
		}
		counts := v.adv.OpCounts[rid]
		n, ok := counts[at.HID]
		if !ok || at.OpNum < 0 || at.OpNum > n {
			core.Rejectf("responseEmittedBy for %s names unknown operation (%s,%d)", rid, at.HID, at.OpNum)
		}
		s.addEdge(eg.opID(rid, at.HID, at.OpNum), eg.respID(rid))
		if at.OpNum == n {
			s.addEdge(eg.respID(rid), eg.hEndID(rid, at.HID))
		} else {
			s.addEdge(eg.respID(rid), eg.opID(rid, at.HID, at.OpNum+1))
		}
	}
}

// checkOpIsValid implements Figure 16's CheckOpIsValid: the operation's
// handler must be advised for this request, the op number must be in range,
// and no other log entry may claim the same operation.
func (v *Verifier) checkOpIsValid(rid core.RID, hid core.HID, opnum int, loc opLoc) {
	counts, ok := v.adv.OpCounts[rid]
	if !ok {
		core.Rejectf("log entry for request %s with no opcounts", rid)
	}
	n, ok := counts[hid]
	if !ok {
		core.Rejectf("log entry for unadvised handler (%s,%s)", rid, hid)
	}
	if opnum < 1 || opnum > n {
		core.Rejectf("log entry op number %d out of range [1,%d] for (%s,%s)", opnum, n, rid, hid)
	}
	op := core.Op{RID: rid, HID: hid, Num: opnum}
	if _, dup := v.opMap[op]; dup {
		core.Rejectf("two log entries claim operation %v", op)
	}
	v.opMap[op] = loc
}

// addHandlerRelatedEdges implements Figure 16's AddHandlerRelatedEdges:
// handler-log precedence edges, the per-request Registered set, and
// activation edges from emits to the handlers they activate.
func (v *Verifier) addHandlerRelatedEdges(s *esink) {
	eg := v.eg
	for _, rid := range sortedKeys(v.adv.HandlerLogs) {
		log := v.adv.HandlerLogs[rid]
		if !v.inTrace[rid] {
			core.Rejectf("handler log for request %s absent from trace", rid)
		}
		registered := make(map[regEntry]bool)
		var prev core.Op
		for i, op := range log {
			s.poll()
			v.checkOpIsValid(rid, op.HID, op.OpNum, opLoc{rid: rid, idx: i})
			cur := core.Op{RID: rid, HID: op.HID, Num: op.OpNum}
			if i != 0 {
				s.addEdge(eg.opID(prev.RID, prev.HID, prev.Num), eg.opID(rid, op.HID, op.OpNum))
			}
			prev = cur
			switch op.Kind {
			case advice.OpRegister:
				for _, ev := range op.Events {
					registered[regEntry{event: ev, fn: op.Fn}] = true
				}
			case advice.OpUnregister:
				delete(registered, regEntry{event: op.Event, fn: op.Fn})
			case advice.OpEmit:
				set := make(map[core.HID]bool)
				add := func(fn core.FunctionID) {
					hid := core.ComputeHID(fn, op.Event, op.HID, op.OpNum)
					if _, ok := v.adv.OpCounts[rid][hid]; !ok {
						core.Rejectf("emit %v activates handler %s not advised for %s", cur, hid, rid)
					}
					set[hid] = true
					s.addEdge(eg.opID(rid, op.HID, op.OpNum), eg.opID(rid, hid, 0))
				}
				for _, re := range v.globalHandlers {
					if re.event == op.Event {
						add(re.fn)
					}
				}
				for _, re := range sortedKeysFunc(registered, regEntryLess) {
					if re.event == op.Event {
						add(re.fn)
					}
				}
				v.activated[cur] = set
			default:
				core.Rejectf("unknown handler-log op kind %d", op.Kind)
			}
		}
	}
}
