// Parallel-server completeness: KEM explicitly allows multiple concurrently
// executing handlers (§3 — "Karousos can be used even with future Node.js
// runtimes that ... use multiple threads"). These tests serve workloads with
// a truly parallel dispatch loop (several OS threads) and audit the result
// with the *unchanged* verifier: every honest parallel execution must be
// accepted, in both Karousos and Orochi-JS modes.
package verifier_test

import (
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/apps/wiki"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func TestParallelServerRunsVerify(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*core.App, *kvstore.Store)
		gen  func() []server.Request
	}{
		{
			"motd",
			func() (*core.App, *kvstore.Store) { return motd.New(), nil },
			func() []server.Request { return workload.MOTD(80, workload.Mixed, 5) },
		},
		{
			"stacks",
			func() (*core.App, *kvstore.Store) { return stacks.New(), kvstore.New(kvstore.Serializable) },
			func() []server.Request {
				return workload.Stacks(80, workload.Mixed, 5, workload.DefaultStacksOptions())
			},
		},
		{
			"wiki",
			func() (*core.App, *kvstore.Store) { return wiki.New(), kvstore.New(kvstore.Serializable) },
			func() []server.Request { return workload.Wiki(80, 5) },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				app, store := tc.mk()
				srv := server.New(server.Config{
					App: app, Store: store, Seed: int64(trial),
					Workers: 8, CollectKarousos: true, CollectOrochi: true,
				})
				res, err := srv.Run(tc.gen(), 12)
				if err != nil {
					t.Fatalf("trial %d: serve: %v", trial, err)
				}
				appK, _ := tc.mk()
				if _, err := verifier.Audit(verifier.Config{
					App: appK, Mode: advice.ModeKarousos, Isolation: adya.Serializable,
				}, res.Trace, res.Karousos); err != nil {
					t.Fatalf("trial %d: karousos rejected honest parallel run: %v", trial, err)
				}
				appO, _ := tc.mk()
				if _, err := verifier.Audit(verifier.Config{
					App: appO, Mode: advice.ModeOrochiJS, Isolation: adya.Serializable,
				}, res.Trace, res.Orochi); err != nil {
					t.Fatalf("trial %d: orochi rejected honest parallel run: %v", trial, err)
				}
			}
		})
	}
}

// TestParallelServerAttackStillRejected: parallelism at the server must not
// weaken soundness — a tampered response from a parallel run is rejected
// like any other.
func TestParallelServerAttackStillRejected(t *testing.T) {
	app := motd.New()
	srv := server.New(server.Config{App: app, Seed: 3, Workers: 8, CollectKarousos: true})
	res, err := srv.Run(workload.MOTD(40, workload.Mixed, 9), 10)
	if err != nil {
		t.Fatal(err)
	}
	res.Trace.Events[len(res.Trace.Events)-1].Data = "forged"
	if _, err := verifier.Audit(verifier.Config{
		App: motd.New(), Mode: advice.ModeKarousos,
	}, res.Trace, res.Karousos); err == nil {
		t.Fatal("tampered parallel run accepted")
	}
}
