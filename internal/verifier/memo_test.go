// Memo-cache soundness tests (DESIGN.md §18). Three properties:
//
//  1. Transparency: memo on/off is observationally equivalent — verdicts,
//     reject codes, and every non-memo Stats field are bit-identical across
//     honest runs, tampered traces, and fault-injected advice, at every
//     worker count. Cross-memo comparisons normalize the memo counters
//     (Stats.ZeroMemo); at a fixed memo setting the counters themselves are
//     worker-count invariant.
//  2. Warm behavior: re-auditing an identical epoch against a warm cache
//     hits on every group and still accepts with identical Stats.
//  3. Poisoning resistance: advice tampered after the cache was warmed must
//     miss the warm entries (the key covers the tampered material) and be
//     rejected exactly as a cold audit rejects it.
package verifier_test

import (
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/verifier/memo"
	"karousos.dev/karousos/internal/workload"
)

const memoTestBytes = 64 << 20

// memoVerdictKey is verdictKey with the memo counters normalized away, for
// comparisons that cross memo settings.
func memoVerdictKey(vr *harness.VerifyResult) string {
	vr2 := *vr
	vr2.Stats = vr.Stats.ZeroMemo()
	return verdictKey(&vr2)
}

// requireMemoTransparent audits (tr, adv) cold, then at every worker level
// with and without a fresh memo cache, and requires one normalized verdict.
func requireMemoTransparent(t *testing.T, spec harness.AppSpec, tr *trace.Trace, adv *advice.Advice) {
	t.Helper()
	want := memoVerdictKey(harness.VerifyWith(spec, tr, adv, harness.VerifyOptions{Workers: 1, Limits: verifier.DefaultLimits()}))
	for _, w := range workerLevels() {
		for _, withMemo := range []bool{false, true} {
			opt := harness.VerifyOptions{Workers: w, Limits: verifier.DefaultLimits()}
			if withMemo {
				opt.Memo = memo.NewCache(memoTestBytes)
			}
			got := memoVerdictKey(harness.VerifyWith(spec, tr, adv, opt))
			if got != want {
				t.Errorf("workers=%d memo=%v verdict diverged:\n  reference: %s\n  got:       %s", w, withMemo, want, got)
			}
		}
	}
}

func TestMemoDifferentialHonest(t *testing.T) {
	for _, app := range diffApps() {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("%s-seed%d", app.name, seed), func(t *testing.T) {
				run, err := harness.Serve(app.spec, app.reqs(60, seed), 10, seed, harness.CollectKarousos)
				if err != nil {
					t.Fatal(err)
				}
				requireMemoTransparent(t, app.spec, run.Trace, run.Karousos)
			})
		}
	}
}

func TestMemoDifferentialTamperedTrace(t *testing.T) {
	for _, app := range diffApps() {
		t.Run(app.name, func(t *testing.T) {
			run, err := harness.Serve(app.spec, app.reqs(60, 3), 10, 3, harness.CollectKarousos)
			if err != nil {
				t.Fatal(err)
			}
			tampered := &trace.Trace{Events: append([]trace.Event(nil), run.Trace.Events...)}
			for i := range tampered.Events {
				if tampered.Events[i].Kind == trace.Resp {
					tampered.Events[i].Data = map[string]any{"status": "tampered"}
					break
				}
			}
			requireMemoTransparent(t, app.spec, tampered, run.Karousos)
		})
	}
}

func TestMemoDifferentialFaultInjectedAdvice(t *testing.T) {
	run, err := harness.Serve(harness.WikiApp(), workload.Wiki(60, 5), 10, 5, harness.CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	wire := run.Karousos.MarshalBinary()
	ops := []string{
		"bit-flip", "splice", "opcount-inflate", "index-skew",
		"cycle-write-chain", "cycle-write-order", "dup-log-entry", "drop-log-entry",
	}
	for _, name := range ops {
		op, ok := faultinject.Lookup(name)
		if !ok {
			t.Fatalf("no fault operator %q", name)
		}
		for _, seed := range []int64{2, 9} {
			t.Run(fmt.Sprintf("%s-seed%d", name, seed), func(t *testing.T) {
				mut, err := op.Apply(seed, wire)
				if err != nil {
					t.Skipf("operator found no site: %v", err)
				}
				adv, err := advice.UnmarshalBinary(mut)
				if err != nil {
					t.Skipf("corrupted advice does not decode: %v", err)
				}
				requireMemoTransparent(t, harness.WikiApp(), run.Trace, adv)
			})
		}
	}
}

// TestMemoWarmHitsEveryGroup is the cross-epoch warm scenario in miniature:
// the same epoch audited twice through one cache. The second pass must hit
// on every group, accept, and report Stats identical to the cold pass
// modulo the hit/miss counters.
func TestMemoWarmHitsEveryGroup(t *testing.T) {
	for _, app := range diffApps() {
		t.Run(app.name, func(t *testing.T) {
			run, err := harness.Serve(app.spec, app.reqs(60, 1), 10, 1, harness.CollectKarousos)
			if err != nil {
				t.Fatal(err)
			}
			cache := memo.NewCache(memoTestBytes)
			opt := harness.VerifyOptions{Workers: 1, Limits: verifier.DefaultLimits(), Memo: cache}
			cold := harness.VerifyWith(app.spec, run.Trace, run.Karousos, opt)
			if cold.Err != nil {
				t.Fatalf("cold audit rejected an honest run: %v", cold.Err)
			}
			if cold.Stats.MemoHits != 0 || cold.Stats.MemoMisses != cold.Stats.Groups {
				t.Fatalf("cold pass: hits=%d misses=%d groups=%d", cold.Stats.MemoHits, cold.Stats.MemoMisses, cold.Stats.Groups)
			}
			if cache.Len() == 0 {
				t.Fatal("accepting cold audit published no cache entries")
			}
			warm := harness.VerifyWith(app.spec, run.Trace, run.Karousos, opt)
			if warm.Err != nil {
				t.Fatalf("warm audit rejected: %v", warm.Err)
			}
			if warm.Stats.MemoHits != warm.Stats.Groups || warm.Stats.MemoMisses != 0 {
				t.Fatalf("warm pass: hits=%d misses=%d groups=%d", warm.Stats.MemoHits, warm.Stats.MemoMisses, warm.Stats.Groups)
			}
			if got, want := fmt.Sprintf("%+v", warm.Stats.ZeroMemo()), fmt.Sprintf("%+v", cold.Stats.ZeroMemo()); got != want {
				t.Fatalf("warm Stats diverged from cold:\n  cold: %s\n  warm: %s", want, got)
			}
			// Warm hits must also be worker-count invariant.
			for _, w := range workerLevels()[1:] {
				wopt := opt
				wopt.Workers = w
				again := harness.VerifyWith(app.spec, run.Trace, run.Karousos, wopt)
				if again.Err != nil || again.Stats.MemoHits != warm.Stats.MemoHits {
					t.Fatalf("workers=%d warm pass: err=%v hits=%d want %d", w, again.Err, again.Stats.MemoHits, warm.Stats.MemoHits)
				}
			}
		})
	}
}

// TestMemoCachePoisoning is the attack the key closure exists to stop: warm
// the cache with an honest epoch, then tamper the advice — every mutation
// that changes observable replay behavior must miss the warm entries and
// reject with exactly the cold rejection. A poisoned-entry bypass would
// show up here as a warm ACCEPT of advice the cold audit rejects.
func TestMemoCachePoisoning(t *testing.T) {
	spec := harness.MOTDApp()
	run, err := harness.Serve(spec, workload.MOTD(60, workload.WriteHeavy, 1), 10, 1, harness.CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(adv *advice.Advice) bool
	}{
		{"flip-var-log-value", func(adv *advice.Advice) bool {
			for _, entries := range adv.VarLogs {
				for i := range entries {
					if entries[i].Type == advice.AccessWrite {
						entries[i].Value = value.Normalize(map[string]any{"poison": true})
						return true
					}
				}
			}
			return false
		}},
		{"inflate-opcount", func(adv *advice.Advice) bool {
			for rid, counts := range adv.OpCounts {
				for hid := range counts {
					adv.OpCounts[rid][hid]++
					return true
				}
			}
			return false
		}},
		{"swap-response-point", func(adv *advice.Advice) bool {
			for rid, at := range adv.ResponseEmittedBy {
				at.OpNum++
				adv.ResponseEmittedBy[rid] = at
				return true
			}
			return false
		}},
	}
	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			cache := memo.NewCache(memoTestBytes)
			opt := harness.VerifyOptions{Workers: 1, Limits: verifier.DefaultLimits(), Memo: cache}
			if vr := harness.VerifyWith(spec, run.Trace, run.Karousos, opt); vr.Err != nil {
				t.Fatalf("honest warmup rejected: %v", vr.Err)
			}
			tampered := run.Karousos.Clone()
			if !mut.mutate(tampered) {
				t.Skip("mutation found no site")
			}
			coldOpt := harness.VerifyOptions{Workers: 1, Limits: verifier.DefaultLimits()}
			cold := harness.VerifyWith(spec, run.Trace, tampered, coldOpt)
			if cold.Err == nil {
				t.Fatal("cold audit accepted the tampered advice; mutation is not a usable probe")
			}
			warm := harness.VerifyWith(spec, run.Trace, tampered, opt)
			if warm.Err == nil {
				t.Fatal("POISONED: warm cache accepted advice the cold audit rejects")
			}
			if got, want := memoVerdictKey(warm), memoVerdictKey(cold); got != want {
				t.Fatalf("warm rejection differs from cold:\n  cold: %s\n  warm: %s", want, got)
			}
		})
	}
}

// TestMemoEvictionBounded checks the byte budget holds across audits and
// evictions are reported through Stats. The budget is derived from a
// measuring pass so the test does not depend on absolute entry sizes.
func TestMemoEvictionBounded(t *testing.T) {
	spec := harness.MOTDApp()
	var runs []*harness.ServeResult
	for seed := int64(1); seed <= 3; seed++ {
		run, err := harness.Serve(spec, workload.MOTD(40, workload.WriteHeavy, seed), 10, seed, harness.CollectKarousos)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	// Measure the full footprint of three distinct epochs, unbounded.
	big := memo.NewCache(0)
	for _, run := range runs {
		if vr := harness.VerifyWith(spec, run.Trace, run.Karousos, harness.VerifyOptions{Workers: 1, Limits: verifier.DefaultLimits(), Memo: big}); vr.Err != nil {
			t.Fatalf("measuring audit rejected: %v", vr.Err)
		}
	}
	if big.Bytes() == 0 {
		t.Fatal("measuring pass published no bytes")
	}
	// Re-audit into a cache half that size: the budget must hold and the
	// overflow must surface as Stats.MemoEvictions.
	budget := big.Bytes() / 2
	lim := verifier.DefaultLimits()
	lim.MaxMemoEntryBytes = budget // only the byte budget should churn entries
	small := memo.NewCache(budget)
	var evictions int
	for _, run := range runs {
		vr := harness.VerifyWith(spec, run.Trace, run.Karousos, harness.VerifyOptions{Workers: 1, Limits: lim, Memo: small})
		if vr.Err != nil {
			t.Fatalf("bounded audit rejected: %v", vr.Err)
		}
		evictions += vr.Stats.MemoEvictions
		if small.Bytes() > budget {
			t.Fatalf("cache exceeded its budget: %d > %d bytes", small.Bytes(), budget)
		}
	}
	if evictions == 0 {
		t.Fatal("half-sized cache reported no evictions; size accounting is off")
	}
}
