package verifier_test

import (
	"context"
	"encoding/json"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// epoch is one sealed slice of a continuous serving run.
type epoch struct {
	tr       *trace.Trace
	kar, oro *advice.Advice
}

// serveEpochs serves the request batches on one long-lived server, draining
// the trace and advice at every batch boundary — the same protocol the HTTP
// collector follows when it seals an epoch.
func serveEpochs(t *testing.T, spec harness.AppSpec, batches [][]server.Request) []epoch {
	t.Helper()
	app, store := spec.New()
	srv := server.New(server.Config{
		App: app, Store: store, Seed: 42,
		CollectKarousos: true, CollectOrochi: true,
	})
	var out []epoch
	for _, batch := range batches {
		for _, r := range batch {
			if _, err := srv.ServeOne(r); err != nil {
				t.Fatalf("serve %s: %v", r.RID, err)
			}
		}
		kar, oro := srv.DrainAdvice()
		out = append(out, epoch{tr: srv.TakeTrace(), kar: kar, oro: oro})
	}
	return out
}

func auditChain(t *testing.T, spec harness.AppSpec, eps []epoch, mode advice.Mode) {
	t.Helper()
	var carry *verifier.CarryState
	for i, ep := range eps {
		app, _ := spec.New()
		cfg := verifier.Config{App: app, Mode: mode, Isolation: spec.Isolation, Carry: carry}
		adv := ep.kar
		if mode == advice.ModeOrochiJS {
			adv = ep.oro
		}
		st, next, err := verifier.AuditCarry(context.Background(), cfg, ep.tr, adv)
		if err != nil {
			t.Fatalf("%s epoch %d rejected: %v (code %s)", mode, i+1, err, core.RejectCodeOf(err))
		}
		if st.Requests != len(ep.tr.RIDs()) {
			t.Errorf("%s epoch %d audited %d requests, trace has %d", mode, i+1, st.Requests, len(ep.tr.RIDs()))
		}
		carry = next
	}
}

// TestCarryChainAllApps serves every application continuously across three
// epochs and audits each epoch with the carry produced by the previous one.
// This is the tentpole property: per-epoch audits of a long-running server
// accept exactly like one monolithic audit would.
func TestCarryChainAllApps(t *testing.T) {
	for _, spec := range []harness.AppSpec{harness.MOTDApp(), harness.StacksApp(), harness.WikiApp()} {
		t.Run(spec.Name, func(t *testing.T) {
			var reqs []server.Request
			switch spec.Name {
			case "motd":
				reqs = workload.MOTD(60, workload.Mixed, 11)
			case "stacks":
				reqs = workload.Stacks(60, workload.Mixed, 11, workload.DefaultStacksOptions())
			default:
				reqs = workload.Wiki(60, 11)
			}
			batches := [][]server.Request{reqs[:20], reqs[20:40], reqs[40:]}
			eps := serveEpochs(t, spec, batches)
			auditChain(t, spec, eps, advice.ModeKarousos)
			auditChain(t, spec, eps, advice.ModeOrochiJS)
		})
	}
}

// motdEpochs builds a deterministic two-epoch MOTD run where epoch 2's
// response is only explainable by a write that happened in epoch 1.
func motdEpochs(t *testing.T) []epoch {
	t.Helper()
	set := server.Request{RID: "e1-set", Input: value.Map(
		"op", "set", "scope", "always", "msg", "hello-from-epoch-1")}
	get := server.Request{RID: "e2-get", Input: value.Map("op", "get", "day", "mon")}
	return serveEpochs(t, harness.MOTDApp(), [][]server.Request{{set}, {get}})
}

// TestCarryRequiredForCrossEpochReads shows the carry is load-bearing: the
// second epoch accepts with the first epoch's carry and rejects without it,
// because re-execution then reads the app's init state instead of the
// carried write and produces the wrong response.
func TestCarryRequiredForCrossEpochReads(t *testing.T) {
	eps := motdEpochs(t)
	spec := harness.MOTDApp()

	for _, mode := range []advice.Mode{advice.ModeKarousos, advice.ModeOrochiJS} {
		adv := func(ep epoch) *advice.Advice {
			if mode == advice.ModeOrochiJS {
				return ep.oro
			}
			return ep.kar
		}
		app, _ := spec.New()
		_, carry, err := verifier.AuditCarry(context.Background(),
			verifier.Config{App: app, Mode: mode}, eps[0].tr, adv(eps[0]))
		if err != nil {
			t.Fatalf("%s epoch 1 rejected: %v", mode, err)
		}
		if carry == nil {
			t.Fatalf("%s epoch 1 produced no carry", mode)
		}

		app, _ = spec.New()
		if _, _, err := verifier.AuditCarry(context.Background(),
			verifier.Config{App: app, Mode: mode, Carry: carry}, eps[1].tr, adv(eps[1])); err != nil {
			t.Errorf("%s epoch 2 rejected with carry: %v", mode, err)
		}

		app, _ = spec.New()
		_, _, err = verifier.AuditCarry(context.Background(),
			verifier.Config{App: app, Mode: mode}, eps[1].tr, adv(eps[1]))
		if err == nil {
			t.Errorf("%s epoch 2 accepted without the carry it depends on", mode)
		} else if code := core.RejectCodeOf(err); code == "" || code == core.RejectInternalFault {
			t.Errorf("%s epoch 2 without carry rejected with code %q: %v", mode, code, err)
		}
	}
}

// TestCarryForgedIdentityRejects: advice that supplies its own log entry at
// a carry identity is claiming authority over trusted state — the audit
// must reject it as malformed rather than let the entry shadow the carried
// value.
func TestCarryForgedIdentityRejects(t *testing.T) {
	eps := motdEpochs(t)
	spec := harness.MOTDApp()

	app, _ := spec.New()
	_, carry, err := verifier.AuditCarry(context.Background(),
		verifier.Config{App: app, Mode: advice.ModeKarousos}, eps[0].tr, eps[0].kar)
	if err != nil {
		t.Fatalf("epoch 1 rejected: %v", err)
	}

	forged := eps[1].kar.Clone()
	var anyVar core.VarID
	for id := range carry.Vars {
		anyVar = id
		break
	}
	forged.VarLogs[anyVar] = append(forged.VarLogs[anyVar], advice.VarLogEntry{
		Op:    core.Op{RID: core.InitRID, HID: core.InitHID, Num: core.EpochCarryBase},
		Type:  advice.AccessWrite,
		Value: value.Normalize("attacker-controlled"),
	})
	app, _ = spec.New()
	_, _, err = verifier.AuditCarry(context.Background(),
		verifier.Config{App: app, Mode: advice.ModeKarousos, Carry: carry}, eps[1].tr, forged)
	if err == nil {
		t.Fatal("forged carry-identity log entry accepted")
	}
	if code := core.RejectCodeOf(err); code != core.RejectMalformedAdvice {
		t.Fatalf("forged carry identity rejected with %s, want %s (%v)", code, core.RejectMalformedAdvice, err)
	}
}

// TestCarryStateJSONRoundTrip: the auditor daemon checkpoints the carry as
// JSON; values must survive the trip (after Normalize) so a restarted
// auditor resumes with an identical dictionary.
func TestCarryStateJSONRoundTrip(t *testing.T) {
	eps := serveEpochs(t, harness.WikiApp(),
		[][]server.Request{workload.Wiki(30, 3)[:15], workload.Wiki(30, 3)[15:]})
	spec := harness.WikiApp()
	app, _ := spec.New()
	_, carry, err := verifier.AuditCarry(context.Background(),
		verifier.Config{App: app, Mode: advice.ModeKarousos, Isolation: spec.Isolation},
		eps[0].tr, eps[0].kar)
	if err != nil {
		t.Fatalf("epoch 1 rejected: %v", err)
	}
	blob, err := json.Marshal(carry)
	if err != nil {
		t.Fatal(err)
	}
	restored := &verifier.CarryState{}
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	restored.Normalize()
	app, _ = spec.New()
	if _, _, err := verifier.AuditCarry(context.Background(),
		verifier.Config{App: app, Mode: advice.ModeKarousos, Isolation: spec.Isolation, Carry: restored},
		eps[1].tr, eps[1].kar); err != nil {
		t.Fatalf("epoch 2 rejected with round-tripped carry: %v", err)
	}
}
