// Completeness tests: if the server behaved honestly, the audit must accept
// (§2.1, Definition 2) — for every application, scheduler seed, concurrency
// level, and both replay modes.
package verifier_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/apps/wiki"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

type appCase struct {
	name string
	mk   func() (*core.App, *kvstore.Store)
	gen  func(n int, seed int64) []server.Request
}

func appCases() []appCase {
	return []appCase{
		{
			name: "motd",
			mk:   func() (*core.App, *kvstore.Store) { return motd.New(), nil },
			gen: func(n int, seed int64) []server.Request {
				return workload.MOTD(n, workload.Mixed, seed)
			},
		},
		{
			name: "stacks",
			mk:   func() (*core.App, *kvstore.Store) { return stacks.New(), kvstore.New(kvstore.Serializable) },
			gen: func(n int, seed int64) []server.Request {
				return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
			},
		},
		{
			name: "wiki",
			mk:   func() (*core.App, *kvstore.Store) { return wiki.New(), nil2store() },
			gen:  func(n int, seed int64) []server.Request { return workload.Wiki(n, seed) },
		},
	}
}

func nil2store() *kvstore.Store { return kvstore.New(kvstore.Serializable) }

// TestQuickHonestRunsAccepted fuzzes over workload seeds, scheduler seeds,
// and concurrency: the audit must accept every honest run in both modes.
func TestQuickHonestRunsAccepted(t *testing.T) {
	for _, ac := range appCases() {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			root := testSeed(t)
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n := 10 + r.Intn(40)
				conc := 1 + r.Intn(10)
				reqs := ac.gen(n, r.Int63())
				app, store := ac.mk()
				srv := server.New(server.Config{
					App: app, Store: store, Seed: r.Int63(),
					CollectKarousos: true, CollectOrochi: true,
				})
				res, err := srv.Run(reqs, conc)
				if err != nil {
					t.Logf("serve failed: %v", err)
					return false
				}
				appK, _ := ac.mk()
				if _, err := verifier.Audit(verifier.Config{
					App: appK, Mode: advice.ModeKarousos, Isolation: adya.Serializable,
				}, res.Trace, res.Karousos); err != nil {
					t.Logf("karousos rejected honest run: %v", err)
					return false
				}
				appO, _ := ac.mk()
				if _, err := verifier.Audit(verifier.Config{
					App: appO, Mode: advice.ModeOrochiJS, Isolation: adya.Serializable,
				}, res.Trace, res.Orochi); err != nil {
					t.Logf("orochi rejected honest run: %v", err)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{
				MaxCount: 25,
				Rand:     rand.New(rand.NewSource(root)),
			}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAdviceSurvivesWireRoundTrip: auditing the decoded wire form must give
// the same verdict as auditing the in-memory advice.
func TestAdviceSurvivesWireRoundTrip(t *testing.T) {
	for _, ac := range appCases() {
		app, store := ac.mk()
		srv := server.New(server.Config{App: app, Store: store, Seed: 11, CollectKarousos: true})
		res, err := srv.Run(ac.gen(40, 17), 6)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := advice.UnmarshalBinary(res.Karousos.MarshalBinary())
		if err != nil {
			t.Fatalf("%s: decode: %v", ac.name, err)
		}
		appV, _ := ac.mk()
		if _, err := verifier.Audit(verifier.Config{
			App: appV, Mode: advice.ModeKarousos, Isolation: adya.Serializable,
		}, res.Trace, decoded); err != nil {
			t.Errorf("%s: wire round-tripped advice rejected: %v", ac.name, err)
		}
	}
}

// TestModeMismatchRejected: feeding Orochi advice to a Karousos-configured
// verifier is a usage error, reported as such.
func TestModeMismatchRejected(t *testing.T) {
	ac := appCases()[0]
	app, store := ac.mk()
	srv := server.New(server.Config{App: app, Store: store, Seed: 1, CollectOrochi: true})
	res, err := srv.Run(ac.gen(10, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	appV, _ := ac.mk()
	if _, err := verifier.Audit(verifier.Config{App: appV, Mode: advice.ModeKarousos}, res.Trace, res.Orochi); err == nil {
		t.Error("mode mismatch accepted")
	}
}

// TestGroupingStatistics: Karousos must form at most as many groups as
// Orochi-JS on the same run (same trees group regardless of order), and both
// must re-execute every request exactly once.
func TestGroupingStatistics(t *testing.T) {
	for _, ac := range appCases() {
		app, store := ac.mk()
		srv := server.New(server.Config{App: app, Store: store, Seed: 23, CollectKarousos: true, CollectOrochi: true})
		res, err := srv.Run(ac.gen(60, 29), 8)
		if err != nil {
			t.Fatal(err)
		}
		appK, _ := ac.mk()
		stK, err := verifier.Audit(verifier.Config{App: appK, Mode: advice.ModeKarousos, Isolation: adya.Serializable}, res.Trace, res.Karousos)
		if err != nil {
			t.Fatalf("%s karousos: %v", ac.name, err)
		}
		appO, _ := ac.mk()
		stO, err := verifier.Audit(verifier.Config{App: appO, Mode: advice.ModeOrochiJS, Isolation: adya.Serializable}, res.Trace, res.Orochi)
		if err != nil {
			t.Fatalf("%s orochi: %v", ac.name, err)
		}
		if stK.Groups > stO.Groups {
			t.Errorf("%s: karousos groups (%d) exceed orochi groups (%d)", ac.name, stK.Groups, stO.Groups)
		}
		if stK.Requests != 60 || stO.Requests != 60 {
			t.Errorf("%s: request counts %d/%d", ac.name, stK.Requests, stO.Requests)
		}
		if stK.GraphNodes == 0 || stK.GraphEdges == 0 {
			t.Errorf("%s: empty execution graph", ac.name)
		}
	}
}

// TestOrochiModeRequiresLoggedAccesses: Karousos advice (which omits
// R-ordered accesses) must not pass an Orochi-mode audit for an application
// with R-ordered accesses — the Orochi verifier has no version dictionary to
// feed them from.
func TestOrochiModeRequiresLoggedAccesses(t *testing.T) {
	app := wiki.New()
	store := kvstore.New(kvstore.Serializable)
	srv := server.New(server.Config{App: app, Store: store, Seed: 2, CollectKarousos: true})
	res, err := srv.Run(workload.Wiki(20, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	forged := res.Karousos.Clone()
	forged.Mode = advice.ModeOrochiJS
	if _, err := verifier.Audit(verifier.Config{
		App: wiki.New(), Mode: advice.ModeOrochiJS, Isolation: adya.Serializable,
	}, res.Trace, forged); err == nil {
		t.Error("orochi-mode audit accepted advice missing logged accesses")
	}
}
