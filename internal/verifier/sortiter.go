package verifier

import (
	"cmp"
	"sort"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
)

// Deterministic map sweeps. The verdict — including *which* forgery a
// rejection names and the node order of the execution graph, hence which
// cycle FindCycle reports — must be a pure function of (trace, advice), so
// every verdict-affecting iteration over a map goes through these helpers
// instead of Go's randomized range order (detlint enforces this).

// sortedKeys returns m's keys in ascending order.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sortedKeysFunc returns m's keys ordered by less, for struct keys.
func sortedKeysFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

func opLess(a, b core.Op) bool {
	if a.RID != b.RID {
		return a.RID < b.RID
	}
	if a.HID != b.HID {
		return a.HID < b.HID
	}
	return a.Num < b.Num
}

func txPosLess(a, b advice.TxPos) bool {
	if a.RID != b.RID {
		return a.RID < b.RID
	}
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	return a.Index < b.Index
}

func txRefLess(a, b txRef) bool {
	if a.rid != b.rid {
		return a.rid < b.rid
	}
	return a.tid < b.tid
}

func regEntryLess(a, b regEntry) bool {
	if a.event != b.event {
		return a.event < b.event
	}
	return a.fn < b.fn
}
