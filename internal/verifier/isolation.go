package verifier

import (
	"strings"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/core"
)

// addExternalStateEdges implements Figure 16's AddExternalStateEdges:
// transaction-log validation, the Committed set, read-from (write-read)
// edges between external-state operations, the ReadMap, own-write
// consistency (MyWrites), and lastModification bookkeeping.
//
// It runs in two passes: the first registers every transaction operation in
// OpMap (so read-from references can point at transactions validated later),
// the second processes GETs and PUTs.
func (v *Verifier) addExternalStateEdges(s *esink) {
	seen := make(map[txRef]bool, len(v.adv.TxLogs))
	for i := range v.adv.TxLogs {
		tl := &v.adv.TxLogs[i]
		ref := txRef{rid: tl.RID, tid: tl.TID}
		if seen[ref] {
			core.Rejectf("duplicate transaction log for %s/%s", tl.RID, tl.TID)
		}
		seen[ref] = true
		if !v.inTrace[tl.RID] {
			core.Rejectf("transaction log for request %s absent from trace", tl.RID)
		}
		v.txIndex[ref] = tl
		v.checkTxWellFormed(tl)
		if len(tl.Ops) > 0 && tl.Ops[len(tl.Ops)-1].Type == core.TxCommit {
			v.committed[ref] = true
		}
		for j := range tl.Ops {
			s.poll()
			op := &tl.Ops[j]
			v.checkOpIsValid(tl.RID, op.HID, op.OpNum, opLoc{isTx: true, rid: tl.RID, tid: tl.TID, idx: j + 1})
		}
	}

	for i := range v.adv.TxLogs {
		tl := &v.adv.TxLogs[i]
		ref := txRef{rid: tl.RID, tid: tl.TID}
		myWrites := make(map[string]advice.TxPos)
		for j := range tl.Ops {
			s.poll()
			op := &tl.Ops[j]
			pos := advice.TxPos{RID: tl.RID, TID: tl.TID, Index: j + 1}
			switch op.Type {
			case core.TxScan:
				// Range reads (extension; see core.TxScan): the alleged
				// result set is validated as a set of point reads. Keys must
				// be strictly ascending, match the scanned prefix, and each
				// must read from a PUT on that exact key; a key this
				// transaction wrote must appear reading its own last
				// modification.
				prev := ""
				for i, sr := range op.ReadSet {
					if !strings.HasPrefix(sr.Key, op.Key) {
						core.Rejectf("SCAN %v result key %q outside prefix %q", pos, sr.Key, op.Key)
					}
					if i > 0 && sr.Key <= prev {
						core.Rejectf("SCAN %v result keys not strictly ascending at %q", pos, sr.Key)
					}
					prev = sr.Key
					opw := v.txOpAt(sr.ReadFrom)
					if opw == nil || opw.Type != core.TxPut || opw.Key != sr.Key {
						core.Rejectf("SCAN %v row %q reads from missing or mismatched write %v", pos, sr.Key, sr.ReadFrom)
					}
					// The read-from target may be a carried prior-epoch
					// write, outside the layout — addEdgeN interns it.
					s.addEdgeN(opNode(sr.ReadFrom.RID, opw.HID, opw.OpNum), opNode(tl.RID, op.HID, op.OpNum))
					v.readMap[sr.ReadFrom] = append(v.readMap[sr.ReadFrom], pos)
					if mw, ok := myWrites[sr.Key]; ok && mw != sr.ReadFrom {
						core.RejectCodef(core.RejectIsolationViolation, "SCAN %v ignores own write %v of key %q", pos, mw, sr.Key)
					}
				}
				// Own writes within the prefix must be visible to the scan.
				for _, key := range sortedKeys(myWrites) {
					mw := myWrites[key]
					if !strings.HasPrefix(key, op.Key) {
						continue
					}
					found := false
					for _, sr := range op.ReadSet {
						if sr.Key == key {
							found = true
						}
					}
					if !found {
						core.RejectCodef(core.RejectIsolationViolation, "SCAN %v omits this transaction's own write %v of key %q", pos, mw, key)
					}
				}
			case core.TxGet:
				if op.ReadFrom != nil {
					w := *op.ReadFrom
					opw := v.txOpAt(w)
					if opw == nil {
						core.Rejectf("GET %v reads from unknown operation %v", pos, w)
					}
					if opw.Type != core.TxPut || opw.Key != op.Key {
						core.Rejectf("GET %v reads from non-PUT or wrong key at %v", pos, w)
					}
					// Write-read edge between external state operations
					// (§4.4 footnote: only WR edges; WW/RW would wrongly
					// constrain TxOp order for weakly ordered stores).
					s.addEdgeN(opNode(w.RID, opw.HID, opw.OpNum), opNode(tl.RID, op.HID, op.OpNum))
					v.readMap[w] = append(v.readMap[w], pos)
					// Reading a key this transaction already wrote must
					// observe its own last modification.
					if mw, ok := myWrites[op.Key]; ok && mw != w {
						core.RejectCodef(core.RejectIsolationViolation, "GET %v ignores own write %v of key %q", pos, mw, op.Key)
					}
				} else if mw, ok := myWrites[op.Key]; ok {
					core.RejectCodef(core.RejectIsolationViolation, "GET %v reads key %q as absent despite own write %v", pos, op.Key, mw)
				}
			case core.TxPut:
				myWrites[op.Key] = pos
				if v.committed[ref] {
					v.lastMod[lmKey{rid: tl.RID, tid: tl.TID, key: op.Key}] = j + 1
				}
			}
		}
	}
}

// checkTxWellFormed enforces the structural shape of one transaction log: it
// must start with tx_start, contain no second tx_start, and nothing may
// follow a commit or abort. An honest server produces exactly this shape; a
// violation is advice forgery.
func (v *Verifier) checkTxWellFormed(tl *advice.TxLog) {
	if len(tl.Ops) == 0 || tl.Ops[0].Type != core.TxStart {
		core.Rejectf("transaction %s/%s does not begin with tx_start", tl.RID, tl.TID)
	}
	for j := 1; j < len(tl.Ops); j++ {
		switch tl.Ops[j].Type {
		case core.TxStart:
			core.Rejectf("transaction %s/%s has a second tx_start", tl.RID, tl.TID)
		case core.TxCommit, core.TxAbort:
			if j != len(tl.Ops)-1 {
				core.Rejectf("transaction %s/%s has operations after %s", tl.RID, tl.TID, tl.Ops[j].Type)
			}
		}
	}
}

// txOpAt resolves a TxPos into its log entry — this epoch's transaction
// logs first, then the carried prior-epoch writes — or nil if unknown.
// No ambiguity arises: carried positions name prior-epoch rids, and a
// transaction log for a rid absent from this epoch's trace is rejected
// before any resolution happens.
func (v *Verifier) txOpAt(p advice.TxPos) *advice.TxOp {
	tl, ok := v.txIndex[txRef{rid: p.RID, tid: p.TID}]
	if !ok || p.Index < 1 || p.Index > len(tl.Ops) {
		if op, carried := v.carryTx[p]; carried {
			return op
		}
		return nil
	}
	return &tl.Ops[p.Index-1]
}

// isolationLevelVerification implements Figure 17: it provisionally verifies
// the alleged history against the expected isolation level by extracting the
// per-key write order, checking write-order/lastModification consistency and
// the committed-reads rule, and running Adya's cycle tests.
func (v *Verifier) isolationLevelVerification() {
	writeOrderPerKey := v.extractWriteOrderPerKey()
	v.woPerKey = writeOrderPerKey

	// Committed transactions may only read versions that were installed
	// (Figure 17's AddReadDependencyEdges line 33–36, applicable to levels
	// that exclude G1b: read committed and serializability).
	if v.cfg.Isolation != adya.ReadUncommitted {
		for _, w := range sortedKeysFunc(v.readMap, txPosLess) {
			// A carried write was installed in a prior accepted epoch; it
			// is readable without appearing in this epoch's write order.
			if v.inWO[w] || v.isCarried(w) {
				continue
			}
			for _, r := range v.readMap[w] {
				if v.committed[txRef{rid: r.RID, tid: r.TID}] && (r.RID != w.RID || r.TID != w.TID) {
					core.RejectCodef(core.RejectIsolationViolation, "committed transaction %s/%s reads from non-installed write %v", r.RID, r.TID, w)
				}
			}
		}
	}

	h := &adya.History{WriteOrderPerKey: make(map[string][]adya.Write, len(writeOrderPerKey))}
	for _, ref := range sortedKeysFunc(v.committed, txRefLess) {
		h.Committed = append(h.Committed, adya.TxKey{RID: string(ref.rid), TID: string(ref.tid)})
	}
	for _, key := range sortedKeys(writeOrderPerKey) {
		order := writeOrderPerKey[key]
		ws := make([]adya.Write, len(order))
		for i, p := range order {
			ws[i] = adya.Write{Tx: adya.TxKey{RID: string(p.RID), TID: string(p.TID)}, Pos: p.Index}
		}
		h.WriteOrderPerKey[key] = ws
	}
	for _, w := range sortedKeysFunc(v.readMap, txPosLess) {
		// Reads from carried writes stay out of the Adya history: the epoch
		// seal happens between requests, so every prior-epoch transaction
		// committed before any in-epoch transaction began — cross-boundary
		// anti-dependencies all point forward in time and cannot close an
		// in-epoch cycle (see DESIGN.md §10 for this boundary argument).
		if v.isCarried(w) {
			continue
		}
		for _, r := range v.readMap[w] {
			h.Reads = append(h.Reads, adya.Read{
				From:  adya.Write{Tx: adya.TxKey{RID: string(w.RID), TID: string(w.TID)}, Pos: w.Index},
				By:    adya.TxKey{RID: string(r.RID), TID: string(r.TID)},
				ByPos: r.Index,
			})
		}
	}
	if v.cfg.Isolation == adya.SnapshotIsolation {
		times := v.validateTxOrder()
		if err := adya.CheckSI(h, times); err != nil {
			core.RejectCodef(core.RejectIsolationViolation, "%v", err)
		}
		return
	}
	if err := adya.Check(h, v.cfg.Isolation); err != nil {
		core.RejectCodef(core.RejectIsolationViolation, "%v", err)
	}
}

// validateTxOrder checks the alleged begin/commit order (snapshot isolation
// only) for well-formedness and consistency with the transaction logs and
// write order, and returns each committed transaction's positions.
func (v *Verifier) validateTxOrder() map[adya.TxKey]adya.TxTimes {
	times := make(map[adya.TxKey]adya.TxTimes, len(v.committed))
	seenBegin := make(map[txRef]bool)
	seenCommit := make(map[txRef]bool)
	for i, ev := range v.adv.TxOrder {
		ref := txRef{rid: ev.RID, tid: ev.TID}
		if _, known := v.txIndex[ref]; !known {
			core.Rejectf("txOrder event %d names unknown transaction %s/%s", i, ev.RID, ev.TID)
		}
		key := adya.TxKey{RID: string(ev.RID), TID: string(ev.TID)}
		switch ev.Kind {
		case 0: // begin
			if seenBegin[ref] {
				core.Rejectf("transaction %s/%s begins twice in txOrder", ev.RID, ev.TID)
			}
			seenBegin[ref] = true
			tt := times[key]
			tt.Begin = i
			times[key] = tt
		case 1: // commit
			if seenCommit[ref] {
				core.Rejectf("transaction %s/%s commits twice in txOrder", ev.RID, ev.TID)
			}
			if !v.committed[ref] {
				core.Rejectf("txOrder commits %s/%s but its log does not end in tx_commit", ev.RID, ev.TID)
			}
			seenCommit[ref] = true
			tt := times[key]
			tt.Commit = i
			times[key] = tt
		default:
			core.Rejectf("txOrder event %d has unknown kind %d", i, ev.Kind)
		}
	}
	for _, ref := range sortedKeysFunc(v.committed, txRefLess) {
		if !seenBegin[ref] || !seenCommit[ref] {
			core.Rejectf("committed transaction %s/%s missing begin or commit in txOrder", ref.rid, ref.tid)
		}
	}
	// The write order (binlog) is commit-ordered at an honest server; the
	// alleged orders must agree.
	lastCommitPos := -1
	seenTx := make(map[txRef]bool)
	for _, p := range v.adv.WriteOrder {
		ref := txRef{rid: p.RID, tid: p.TID}
		if seenTx[ref] {
			continue
		}
		seenTx[ref] = true
		pos := times[adya.TxKey{RID: string(p.RID), TID: string(p.TID)}].Commit
		if pos < lastCommitPos {
			core.RejectCodef(core.RejectIsolationViolation, "write order and txOrder disagree on commit order at %s/%s", p.RID, p.TID)
		}
		lastCommitPos = pos
	}
	return times
}

// extractWriteOrderPerKey implements Figure 17's ExtractWriteOrderPerKey:
// the alleged global write order must list exactly the last modifications of
// committed transactions, once each, and is split per key.
func (v *Verifier) extractWriteOrderPerKey() map[string][]advice.TxPos {
	if len(v.adv.WriteOrder) != len(v.lastMod) {
		core.RejectCodef(core.RejectIsolationViolation, "write order has %d entries but the logs imply %d last modifications",
			len(v.adv.WriteOrder), len(v.lastMod))
	}
	perKey := make(map[string][]advice.TxPos)
	for _, p := range v.adv.WriteOrder {
		if v.inWO[p] {
			core.Rejectf("write order lists %v twice", p)
		}
		v.inWO[p] = true
		op := v.txOpAt(p)
		if op == nil || op.Type != core.TxPut {
			core.Rejectf("write order entry %v is not a PUT in the logs", p)
		}
		if v.lastMod[lmKey{rid: p.RID, tid: p.TID, key: op.Key}] != p.Index {
			core.RejectCodef(core.RejectIsolationViolation, "write order entry %v is not a committed last modification of key %q", p, op.Key)
		}
		perKey[op.Key] = append(perKey[op.Key], p)
	}
	return perKey
}
