package verifier

import (
	"sort"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// reExec implements Figure 18: requests are re-executed in control-flow
// groups (equal tags), each group running once through multivalues. After
// all groups, the verifier checks that every advised handler was executed
// and every request responded.
func (v *Verifier) reExec() {
	var order []string
	groups := make(map[string][]core.RID)
	for _, ridStr := range v.tr.RIDs() {
		rid := core.RID(ridStr)
		tag, ok := v.adv.Tags[rid]
		if !ok {
			core.Rejectf("request %s has no control-flow tag", rid)
		}
		if _, seen := groups[tag]; !seen {
			order = append(order, tag)
		}
		groups[tag] = append(groups[tag], rid)
	}
	v.Stats.Groups = len(order)
	w := v.workers()
	if v.cfg.Memo != nil {
		// Memoized dispatch always takes the effect-buffered path — even at
		// Workers=1 — so hits and misses merge through one engine whose
		// bit-identity to the sequential path is differentially proven.
		v.reExecMemo(order, groups)
	} else if w <= 1 || len(order) <= 1 {
		for _, tag := range order {
			v.runGroup(groups[tag], nil)
		}
	} else {
		// Each group replays into a private effect buffer; buffers merge in
		// canonical tag order, so the verdict, the first rejection, and every
		// Stats counter are bit-identical to the sequential engine no matter
		// how the scheduler interleaves the workers (DESIGN.md §13).
		effs := make([]*groupEffects, len(order))
		fanOut(w, len(order), func(i int) {
			eff := newGroupEffects()
			defer func() {
				if r := recover(); r != nil {
					eff.rej = asReject(r)
				}
				effs[i] = eff
			}()
			v.runGroup(groups[order[i]], eff)
		})
		for _, eff := range effs {
			v.applyEffects(eff)
		}
	}

	// Figure 18 line 64: every handler in the advice must have been
	// re-executed.
	for _, rid := range sortedKeys(v.adv.OpCounts) {
		for _, hid := range sortedKeys(v.adv.OpCounts[rid]) {
			if !v.executed[rid][hid] {
				core.RejectCodef(core.RejectLogMismatch, "advised handler (%s,%s) was never re-executed", rid, hid)
			}
		}
	}
	for _, rid := range sortedKeys(v.inputs) {
		if !v.responded[rid] {
			core.RejectCodef(core.RejectLogMismatch, "re-execution produced no response for %s", rid)
		}
	}
}

type groupAct struct {
	hid     core.HID
	fn      core.FunctionID
	event   core.EventName
	payload *mv.MV
}

// groupExec re-executes one control-flow group; it implements core.Ops for
// the group's contexts.
type groupExec struct {
	v        *Verifier
	rids     []core.RID
	parentOf map[core.HID]core.HID
	active   []groupAct
	txnum    map[core.TxID]int
	// eff is the group's private effect buffer when re-execution runs on a
	// worker pool; nil means mutate shared state directly (sequential mode).
	eff *groupEffects
}

// markExecuted performs the duplicate-activation check and marks (rid, hid)
// re-executed. Requests are partitioned across groups by their tag, so the
// executed set is rid-partitioned and a group's private view of its own rids
// equals the sequential engine's shared view.
func (g *groupExec) markExecuted(rid core.RID, hid core.HID) {
	if g.eff == nil {
		ex := g.v.executed[rid]
		if ex == nil {
			ex = make(map[core.HID]bool)
			g.v.executed[rid] = ex
		}
		if ex[hid] {
			core.RejectCodef(core.RejectLogMismatch, "handler (%s,%s) re-executed twice", rid, hid)
		}
		ex[hid] = true
		return
	}
	ex := g.eff.executed[rid]
	if ex == nil {
		ex = make(map[core.HID]bool)
		g.eff.executed[rid] = ex
	}
	if ex[hid] {
		core.RejectCodef(core.RejectLogMismatch, "handler (%s,%s) re-executed twice", rid, hid)
	}
	ex[hid] = true
	g.eff.record(intent{kind: effExecuted, rid: rid, hid: hid})
}

// consumeOp marks a handler-log or transaction-log entry consumed. Op
// identities carry the rid, so consumption marks are rid-partitioned too.
func (g *groupExec) consumeOp(op core.Op) {
	if g.eff == nil {
		g.v.opConsumed[op] = true
		return
	}
	g.eff.record(intent{kind: effOpConsumed, op: op})
}

func (v *Verifier) runGroup(rids []core.RID, eff *groupEffects) {
	g := &groupExec{
		v:        v,
		rids:     rids,
		parentOf: make(map[core.HID]core.HID),
		txnum:    make(map[core.TxID]int),
		eff:      eff,
	}
	// Step (1) of Figure 18: enqueue the request handlers with the request
	// inputs; every request in the group must advise every request handler.
	inputs := make([]value.V, len(rids))
	for i, rid := range rids {
		inputs[i] = v.inputs[rid]
	}
	in := mv.FromVals(inputs)
	for _, fn := range v.requestFns {
		hid := core.RequestHID(fn, v.cfg.App.RequestEvent)
		for _, rid := range rids {
			if _, ok := v.adv.OpCounts[rid][hid]; !ok {
				core.Rejectf("request handler %s not advised for %s", hid, rid)
			}
		}
		g.parentOf[hid] = core.InitHID
		g.active = append(g.active, groupAct{hid: hid, fn: fn, event: v.cfg.App.RequestEvent, payload: in})
	}
	// Step (2): run handlers from the active queue to completion.
	for len(g.active) > 0 {
		v.effPoll(eff)
		act := g.active[0]
		g.active = g.active[1:]
		for _, rid := range rids {
			g.markExecuted(rid, act.hid)
		}
		ctx := core.NewContext(g, rids, act.hid, act.fn, act.event, core.InitLabel)
		v.cfg.App.Func(act.fn)(ctx, act.payload)
		// Handler exit (Figure 18 line 60): the advised op count must match
		// the re-executed count exactly.
		for _, rid := range rids {
			if n := v.adv.OpCounts[rid][act.hid]; n != ctx.OpsIssued() {
				core.RejectCodef(core.RejectLogMismatch, "handler (%s,%s) advised %d ops but re-executed %d", rid, act.hid, n, ctx.OpsIssued())
			}
		}
		if eff == nil {
			v.Stats.HandlersRerun++
		} else {
			eff.record(intent{kind: effRerun})
		}
	}
}

// checkWithin enforces Figure 18 line 43 / Figure 19 lines 5 and 19: an op
// number beyond the advised count is a divergence between advice and replay.
func (g *groupExec) checkWithin(ctx *core.Context, opnum int) {
	g.v.effPoll(g.eff)
	for _, rid := range g.rids {
		if n := g.v.adv.OpCounts[rid][ctx.HID()]; opnum > n {
			core.RejectCodef(core.RejectLogMismatch, "handler (%s,%s) exceeded its advised %d operations", rid, ctx.HID(), n)
		}
	}
}

// checkHandlerOp implements Figure 19's CheckHandlerOp for one request: the
// re-executed handler operation must match the advice's log entry at this
// position exactly.
func (g *groupExec) checkHandlerOp(rid core.RID, hid core.HID, opnum int, want advice.HandlerOp) *advice.HandlerOp {
	op := core.Op{RID: rid, HID: hid, Num: opnum}
	loc, ok := g.v.opMap[op]
	if !ok || loc.isTx || loc.rid != rid {
		core.RejectCodef(core.RejectLogMismatch, "handler operation %v not found in handler log", op)
	}
	e := &g.v.adv.HandlerLogs[rid][loc.idx]
	if e.Kind != want.Kind || e.Event != want.Event || e.Fn != want.Fn {
		core.RejectCodef(core.RejectLogMismatch, "handler operation %v does not match logged %s", op, e.Kind)
	}
	if want.Kind == advice.OpRegister {
		if len(e.Events) != len(want.Events) {
			core.RejectCodef(core.RejectLogMismatch, "register %v logged with different event set", op)
		}
		for i := range e.Events {
			if e.Events[i] != want.Events[i] {
				core.RejectCodef(core.RejectLogMismatch, "register %v logged with different event set", op)
			}
		}
	}
	g.consumeOp(op)
	return e
}

// Emit checks the handler-log entries, verifies that all requests in the
// group activate the same handlers (Figure 19's ActivateHandlers), and
// enqueues the activated handlers with the emit's payload.
func (g *groupExec) Emit(ctx *core.Context, opnum int, event core.EventName, payload *mv.MV) {
	g.checkWithin(ctx, opnum)
	var set map[core.HID]bool
	for i, rid := range g.rids {
		g.checkHandlerOp(rid, ctx.HID(), opnum, advice.HandlerOp{Kind: advice.OpEmit, Event: event})
		s := g.v.activated[core.Op{RID: rid, HID: ctx.HID(), Num: opnum}]
		if i == 0 {
			set = s
			continue
		}
		if len(s) != len(set) {
			core.RejectCodef(core.RejectLogMismatch, "emit (%s,%d) activates different handlers across the group", ctx.HID(), opnum)
		}
		//karousos:nondeterminism-ok set-equality sweep; the rejection message is identical no matter which member differs
		for hid := range set {
			if !s[hid] {
				core.RejectCodef(core.RejectLogMismatch, "emit (%s,%d) activates different handlers across the group", ctx.HID(), opnum)
			}
		}
	}
	hids := make([]core.HID, 0, len(set))
	for hid := range set {
		hids = append(hids, hid)
	}
	sort.Slice(hids, func(i, j int) bool { return hids[i] < hids[j] })
	for _, hid := range hids {
		fn, ok := g.v.fnOfActivated(ctx.HID(), opnum, event, hid)
		if !ok {
			core.Rejectf("cannot resolve function for activated handler %s", hid)
		}
		g.parentOf[hid] = ctx.HID()
		g.active = append(g.active, groupAct{hid: hid, fn: fn, event: event, payload: payload})
	}
}

// fnOfActivated inverts ComputeHID over the application's function table:
// the activated hid determines the function because hids are digests of
// (fn, event, parent, emit op).
func (v *Verifier) fnOfActivated(parent core.HID, opnum int, event core.EventName, hid core.HID) (core.FunctionID, bool) {
	for _, fn := range sortedKeys(v.cfg.App.Funcs) {
		if core.ComputeHID(fn, event, parent, opnum) == hid {
			return fn, true
		}
	}
	return "", false
}

// Register checks the logged register operation.
func (g *groupExec) Register(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	g.checkWithin(ctx, opnum)
	for _, rid := range g.rids {
		g.checkHandlerOp(rid, ctx.HID(), opnum, advice.HandlerOp{
			Kind: advice.OpRegister, Events: []core.EventName{event}, Fn: fn,
		})
	}
}

// Unregister checks the logged unregister operation.
func (g *groupExec) Unregister(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	g.checkWithin(ctx, opnum)
	for _, rid := range g.rids {
		g.checkHandlerOp(rid, ctx.HID(), opnum, advice.HandlerOp{
			Kind: advice.OpUnregister, Event: event, Fn: fn,
		})
	}
}

// TxOp implements Figure 19's CheckStateOp for the whole group: each
// request's operation is checked against its transaction log; GETs are fed
// from their dictating PUT's contents; a logged tx_abort at this position
// replays as a failed operation (the store had aborted the transaction).
func (g *groupExec) TxOp(ctx *core.Context, opnum int, tx *core.Tx, op core.TxOpType, key *mv.MV, val *mv.MV) (*mv.MV, bool) {
	g.checkWithin(ctx, opnum)
	g.txnum[tx.ID]++
	idx := g.txnum[tx.ID]

	vals := make([]value.V, len(g.rids))
	aborted := 0
	for i, rid := range g.rids {
		cur := core.Op{RID: rid, HID: ctx.HID(), Num: opnum}
		loc, ok := g.v.opMap[cur]
		if !ok || !loc.isTx || loc.rid != rid || loc.tid != tx.ID || loc.idx != idx {
			core.RejectCodef(core.RejectLogMismatch, "state operation %v does not match transaction log position (%s,%d)", cur, tx.ID, idx)
		}
		e := g.v.txIndex[txRef{rid: rid, tid: tx.ID}].Ops[idx-1]
		g.consumeOp(cur)
		if e.Type == core.TxAbort && op != core.TxAbort {
			// The store aborted this transaction at this operation
			// (conflict) or the commit failed; replay the failure.
			aborted++
			continue
		}
		if e.Type != op {
			core.RejectCodef(core.RejectLogMismatch, "state operation %v is %s but log records %s", cur, op, e.Type)
		}
		switch op {
		case core.TxScan:
			k, _ := key.At(i).(string)
			if e.Key != k {
				core.RejectCodef(core.RejectLogMismatch, "SCAN %v on prefix %q but log records %q", cur, k, e.Key)
			}
			rows := make([]value.V, len(e.ReadSet))
			for j, sr := range e.ReadSet {
				rows[j] = map[string]value.V{
					"key":   sr.Key,
					"value": g.v.txOpAt(sr.ReadFrom).Contents,
				}
			}
			vals[i] = rows
		case core.TxGet:
			k, _ := key.At(i).(string)
			if e.Key != k {
				core.RejectCodef(core.RejectLogMismatch, "GET %v on key %q but log records %q", cur, k, e.Key)
			}
			if e.ReadFrom == nil {
				vals[i] = nil
			} else {
				vals[i] = g.v.txOpAt(*e.ReadFrom).Contents
			}
		case core.TxPut:
			k, _ := key.At(i).(string)
			if e.Key != k {
				core.RejectCodef(core.RejectLogMismatch, "PUT %v on key %q but log records %q", cur, k, e.Key)
			}
			if !value.Equal(e.Contents, value.Normalize(val.At(i))) {
				core.RejectCodef(core.RejectLogMismatch, "PUT %v writes %s but log records %s", cur, value.String(val.At(i)), value.String(e.Contents))
			}
		}
	}
	if aborted > 0 {
		if aborted != len(g.rids) {
			core.RejectCodef(core.RejectLogMismatch, "transaction %s aborted for part of the group only", tx.ID)
		}
		return nil, false
	}
	if op == core.TxGet || op == core.TxScan {
		return mv.FromVals(vals), true
	}
	return nil, true
}

// Respond implements Figure 18 lines 56–58 and step (3): responseEmittedBy
// must name exactly this operation point, and the produced output must match
// the trace byte-for-byte.
func (g *groupExec) Respond(ctx *core.Context, opsIssued int, payload *mv.MV) {
	for i, rid := range g.rids {
		at := g.v.adv.ResponseEmittedBy[rid]
		if at.HID != ctx.HID() || at.OpNum != opsIssued {
			core.RejectCodef(core.RejectLogMismatch, "request %s responded at (%s,%d) but advice says (%s,%d)", rid, ctx.HID(), opsIssued, at.HID, at.OpNum)
		}
		// responded is rid-partitioned like executed: only this group can
		// respond to its own rids, so the group-local view is complete.
		if g.eff == nil {
			if g.v.responded[rid] {
				core.RejectCodef(core.RejectLogMismatch, "request %s responded twice during re-execution", rid)
			}
			g.v.responded[rid] = true
		} else {
			if g.eff.responded[rid] {
				core.RejectCodef(core.RejectLogMismatch, "request %s responded twice during re-execution", rid)
			}
			g.eff.responded[rid] = true
			g.eff.record(intent{kind: effResponded, rid: rid})
		}
		got := value.Normalize(payload.At(i))
		if !value.Equal(got, g.v.outputs[rid]) {
			core.RejectCodef(core.RejectOutputMismatch, "request %s re-executed output %s does not match trace %s",
				rid, value.String(got), value.String(g.v.outputs[rid]))
		}
	}
}

// Branch implements the divergence check of Figure 18 line 32: all requests
// in a group must take the same branch.
func (g *groupExec) Branch(ctx *core.Context, site string, cond *mv.MV) bool {
	b, ok := cond.Bool()
	if !ok {
		core.RejectCodef(core.RejectLogMismatch, "group diverges at branch %q in handler %s", site, ctx.HID())
	}
	return b
}

// Nondet replays recorded non-determinism (§5); gen is ignored.
func (g *groupExec) Nondet(ctx *core.Context, opnum int, site string, gen func(rid core.RID) value.V) *mv.MV {
	g.checkWithin(ctx, opnum)
	vals := make([]value.V, len(g.rids))
	for i, rid := range g.rids {
		rec, ok := g.v.nondet[core.Op{RID: rid, HID: ctx.HID(), Num: opnum}]
		if !ok {
			core.RejectCodef(core.RejectLogMismatch, "no recorded nondeterminism for %v at site %q", core.Op{RID: rid, HID: ctx.HID(), Num: opnum}, site)
		}
		vals[i] = rec
	}
	return mv.FromVals(vals)
}

// VarInit rejects: loggable variables must be created by the init function,
// which runs under initOps.
func (g *groupExec) VarInit(ctx *core.Context, v *core.Variable, opnum int, val *mv.MV) {
	core.Rejectf("variable %s created outside the init function", v.ID)
}

// VarRead replays the OnRead annotation (Figure 20) per request.
func (g *groupExec) VarRead(ctx *core.Context, vr *core.Variable, opnum int) *mv.MV {
	g.checkWithin(ctx, opnum)
	vv := g.v.variable(vr.ID)
	vals := make([]value.V, len(g.rids))
	for i, rid := range g.rids {
		vals[i] = g.v.annotateRead(vv, core.Op{RID: rid, HID: ctx.HID(), Num: opnum}, g.parentOf, g.eff)
	}
	return mv.FromVals(vals)
}

// VarWrite replays the write plus the OnWrite annotation (Figure 21) per
// request.
func (g *groupExec) VarWrite(ctx *core.Context, vr *core.Variable, opnum int, val *mv.MV) {
	g.checkWithin(ctx, opnum)
	vv := g.v.variable(vr.ID)
	for i, rid := range g.rids {
		g.v.annotateWrite(vv, core.Op{RID: rid, HID: ctx.HID(), Num: opnum}, value.Normalize(val.At(i)), g.parentOf, g.eff)
	}
}
