// Native fuzzing and exhaustive-truncation coverage for the binary codec.
// The decoder is the first thing untrusted advice touches, so its contract
// is absolute: any byte string yields either a decoded advice or an error —
// never a panic, and never an allocation much larger than the input.
package advice

import (
	"runtime"
	"testing"
)

// TestBinaryTruncationEveryOffset cuts the sample advice at every byte
// offset (TestBinaryTruncationsRejected strides; this is exhaustive) and
// requires a clean error each time. The guard around the call turns a
// decoder panic into a test failure that names the offset.
func TestBinaryTruncationEveryOffset(t *testing.T) {
	full := sampleAdvice().MarshalBinary()
	for cut := 0; cut < len(full); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on truncation at %d: %v", cut, r)
				}
			}()
			if _, err := UnmarshalBinary(full[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}()
	}
	if _, err := UnmarshalBinary(full); err != nil {
		t.Fatalf("untruncated advice rejected: %v", err)
	}
}

// TestDeclaredLengthClamped feeds a tiny blob whose section count claims
// 2^40 entries and checks the decoder neither succeeds nor allocates for
// the claim: decode-side memory must stay proportional to input size.
func TestDeclaredLengthClamped(t *testing.T) {
	e := &encoder{}
	e.buf = append(e.buf, codecMagic...)
	e.str(string(ModeKarousos))
	e.uvarint(1 << 40) // tags section: a preposterous declared count
	evil := e.buf

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := UnmarshalBinary(evil)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("inflated declared length accepted")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Errorf("decoding a %d-byte blob allocated %d bytes", len(evil), grew)
	}
}

// FuzzDecodeAdvice hands the decoder arbitrary bytes. The corpus seeds are
// the honest sample advice plus truncations at varied offsets (the same
// corruption family TestBinaryTruncationEveryOffset sweeps exhaustively),
// giving the fuzzer deep starting points into every section decoder.
func FuzzDecodeAdvice(f *testing.F) {
	wire := sampleAdvice().MarshalBinary()
	f.Add(wire)
	for cut := 1; cut < len(wire); cut += len(wire)/16 + 1 {
		f.Add(wire[:cut])
	}
	f.Add([]byte(codecMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode again: the codec
		// is canonical, so acceptance has to be stable across the wire.
		b := a.MarshalBinary()
		if _, err := UnmarshalBinary(b); err != nil {
			t.Fatalf("re-encoded advice fails to decode: %v", err)
		}
	})
}
