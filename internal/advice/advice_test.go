package advice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// sampleAdvice builds an advice instance exercising every section.
func sampleAdvice() *Advice {
	a := New(ModeKarousos)
	a.Tags["r1"] = "tagA"
	a.Tags["r2"] = "tagA"
	a.OpCounts["r1"] = map[core.HID]int{"h1": 3, "h2": 0}
	a.OpCounts["r2"] = map[core.HID]int{"h1": 3}
	a.ResponseEmittedBy["r1"] = OpAt{HID: "h1", OpNum: 2}
	a.ResponseEmittedBy["r2"] = OpAt{HID: "h1", OpNum: 3}
	a.HandlerLogs["r1"] = []HandlerOp{
		{HID: "h1", OpNum: 1, Kind: OpRegister, Events: []core.EventName{"e1", "e2"}, Fn: "f"},
		{HID: "h1", OpNum: 2, Kind: OpEmit, Event: "e1"},
		{HID: "h1", OpNum: 3, Kind: OpUnregister, Event: "e2", Fn: "f"},
	}
	a.VarLogs["v"] = []VarLogEntry{
		{Op: core.Op{RID: "r1", HID: "h1", Num: 1}, Type: AccessWrite, Value: value.Map("n", 1)},
		{Op: core.Op{RID: "r2", HID: "h1", Num: 1}, Type: AccessRead, HasPrec: true,
			Prec: core.Op{RID: "r1", HID: "h1", Num: 1}},
	}
	a.TxLogs = []TxLog{{
		RID: "r1", TID: "t1",
		Ops: []TxOp{
			{HID: "h1", OpNum: 1, Type: core.TxStart},
			{HID: "h1", OpNum: 2, Type: core.TxPut, Key: "k", Contents: value.List(1, "x")},
			{HID: "h1", OpNum: 3, Type: core.TxGet, Key: "k",
				ReadFrom: &TxPos{RID: "r1", TID: "t1", Index: 2}},
			{HID: "h1", OpNum: 4, Type: core.TxCommit},
		},
	}}
	a.WriteOrder = []TxPos{{RID: "r1", TID: "t1", Index: 2}}
	a.Nondet = []NondetEntry{{Op: core.Op{RID: "r1", HID: "h1", Num: 9}, Value: 42.0}}
	return a
}

func adviceEqual(t *testing.T, a, b *Advice) {
	t.Helper()
	if a.Mode != b.Mode {
		t.Errorf("mode %q vs %q", a.Mode, b.Mode)
	}
	if len(a.Tags) != len(b.Tags) {
		t.Fatalf("tags %d vs %d", len(a.Tags), len(b.Tags))
	}
	for rid, tag := range a.Tags {
		if b.Tags[rid] != tag {
			t.Errorf("tag[%s] %q vs %q", rid, tag, b.Tags[rid])
		}
	}
	for rid, counts := range a.OpCounts {
		for hid, n := range counts {
			if b.OpCounts[rid][hid] != n {
				t.Errorf("opcounts[%s][%s] differ", rid, hid)
			}
		}
	}
	for rid, at := range a.ResponseEmittedBy {
		if b.ResponseEmittedBy[rid] != at {
			t.Errorf("responseEmittedBy[%s] differ", rid)
		}
	}
	for rid, log := range a.HandlerLogs {
		blog := b.HandlerLogs[rid]
		if len(blog) != len(log) {
			t.Fatalf("handler log length for %s", rid)
		}
		for i := range log {
			if log[i].HID != blog[i].HID || log[i].Kind != blog[i].Kind ||
				log[i].Event != blog[i].Event || log[i].Fn != blog[i].Fn ||
				len(log[i].Events) != len(blog[i].Events) {
				t.Errorf("handler log entry %s[%d] differs", rid, i)
			}
		}
	}
	for id, entries := range a.VarLogs {
		bent := b.VarLogs[id]
		if len(bent) != len(entries) {
			t.Fatalf("var log length for %s", id)
		}
		for i := range entries {
			if entries[i].Op != bent[i].Op || entries[i].Type != bent[i].Type ||
				entries[i].HasPrec != bent[i].HasPrec || entries[i].Prec != bent[i].Prec ||
				!value.Equal(entries[i].Value, bent[i].Value) {
				t.Errorf("var log entry %s[%d] differs", id, i)
			}
		}
	}
	if len(a.TxLogs) != len(b.TxLogs) {
		t.Fatalf("tx logs %d vs %d", len(a.TxLogs), len(b.TxLogs))
	}
	if len(a.WriteOrder) != len(b.WriteOrder) {
		t.Fatalf("write order length")
	}
	for i := range a.WriteOrder {
		if a.WriteOrder[i] != b.WriteOrder[i] {
			t.Errorf("write order[%d] differs", i)
		}
	}
	if len(a.Nondet) != len(b.Nondet) {
		t.Fatalf("nondet length")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := sampleAdvice()
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	adviceEqual(t, a, b)
}

func TestBinaryRoundTrip(t *testing.T) {
	a := sampleAdvice()
	b, err := UnmarshalBinary(a.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	adviceEqual(t, a, b)
}

func TestBinaryDeterministic(t *testing.T) {
	a := sampleAdvice()
	if string(a.MarshalBinary()) != string(a.MarshalBinary()) {
		t.Error("binary encoding not deterministic")
	}
	// A round-tripped advice must re-encode identically.
	b, err := UnmarshalBinary(a.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if string(a.MarshalBinary()) != string(b.MarshalBinary()) {
		t.Error("round-tripped advice encodes differently")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := UnmarshalBinary([]byte("nonsense")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinaryTruncationsRejected(t *testing.T) {
	full := sampleAdvice().MarshalBinary()
	// Every strict prefix must fail to decode (never panic, never succeed).
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := UnmarshalBinary(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryTrailingBytesRejected(t *testing.T) {
	full := sampleAdvice().MarshalBinary()
	if _, err := UnmarshalBinary(append(append([]byte{}, full...), 0x00)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestBinaryCorruptionNeverPanics(t *testing.T) {
	full := sampleAdvice().MarshalBinary()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		data := append([]byte{}, full...)
		for j := 0; j < 1+r.Intn(4); j++ {
			data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		}
		// Either outcome is fine; a panic is not.
		_, _ = UnmarshalBinary(data)
	}
}

func TestSizeIsBinarySize(t *testing.T) {
	a := sampleAdvice()
	if a.Size() != len(a.MarshalBinary()) {
		t.Error("Size() does not match binary length")
	}
}

func TestClone(t *testing.T) {
	a := sampleAdvice()
	b := a.Clone()
	adviceEqual(t, a, b)
	b.Tags["r1"] = "tampered"
	if a.Tags["r1"] == "tampered" {
		t.Error("Clone shares tag map")
	}
	b.VarLogs["v"][0].Value = "tampered"
	if value.Equal(a.VarLogs["v"][0].Value, "tampered") {
		t.Error("Clone shares var log values")
	}
}

func TestStreamingEncodersDeterministic(t *testing.T) {
	e := sampleAdvice().VarLogs["v"][0]
	if string(AppendVarEntry(nil, &e)) != string(AppendVarEntry(nil, &e)) {
		t.Error("AppendVarEntry not deterministic")
	}
	h := sampleAdvice().HandlerLogs["r1"][0]
	if string(AppendHandlerOp(nil, &h)) != string(AppendHandlerOp(nil, &h)) {
		t.Error("AppendHandlerOp not deterministic")
	}
	x := sampleAdvice().TxLogs[0].Ops[2]
	if string(AppendTxOp(nil, &x)) != string(AppendTxOp(nil, &x)) {
		t.Error("AppendTxOp not deterministic")
	}
}

func TestEmptyAdviceRoundTrip(t *testing.T) {
	a := New(ModeOrochiJS)
	b, err := UnmarshalBinary(a.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if b.Mode != ModeOrochiJS {
		t.Errorf("mode = %q", b.Mode)
	}
}

func TestQuickValueRoundTripThroughBinary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		a := New(ModeKarousos)
		a.Nondet = []NondetEntry{{Op: core.Op{RID: "r", HID: "h", Num: 1}, Value: v}}
		b, err := UnmarshalBinary(a.MarshalBinary())
		if err != nil {
			return false
		}
		return value.Equal(b.Nondet[0].Value, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomValue(r *rand.Rand, depth int) value.V {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return float64(r.Intn(1000))
		default:
			return string(rune('a' + r.Intn(26)))
		}
	}
	switch r.Intn(6) {
	case 0, 1:
		return float64(r.Intn(100))
	case 2:
		return string(rune('a' + r.Intn(26)))
	case 3:
		n := r.Intn(4)
		l := make([]value.V, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return l
	default:
		n := r.Intn(4)
		m := make(map[string]value.V, n)
		for i := 0; i < n; i++ {
			m[string(rune('a'+r.Intn(26)))] = randomValue(r, depth-1)
		}
		return m
	}
}
