// Package advice defines the untrusted advice a Karousos server ships to the
// verifier (paper §4, Appendix C.1.3): control-flow tags, per-request handler
// logs, per-variable variable logs, per-transaction logs, the global write
// order, opcounts, responseEmittedBy, and recorded non-determinism.
//
// The structures here are a wire format — slices and string-keyed maps, all
// JSON-serializable — because advice size is itself an evaluated quantity
// (Figure 8). The verifier builds whatever lookup indexes it needs during
// Preprocess; nothing in this package is trusted.
package advice

import (
	"encoding/json"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// Mode records which algorithm produced the advice; it only gates sanity
// checks in the harness (a Karousos verifier fed Orochi advice is a usage
// bug, not an attack).
type Mode string

const (
	ModeKarousos Mode = "karousos"
	ModeOrochiJS Mode = "orochi-js"
)

// OpAt locates an operation within a known request: the OpNum-th operation
// of handler HID.
type OpAt struct {
	HID   core.HID `json:"hid"`
	OpNum int      `json:"opnum"`
}

// HandlerOpKind enumerates handler-log entries (C.1.3).
type HandlerOpKind uint8

const (
	OpRegister HandlerOpKind = iota
	OpEmit
	OpUnregister
)

func (k HandlerOpKind) String() string {
	switch k {
	case OpRegister:
		return "register"
	case OpEmit:
		return "emit"
	case OpUnregister:
		return "unregister"
	}
	return "handlerop?"
}

// HandlerOp is one entry of a request's handler log: a register, emit, or
// unregister issued by handler HID as its OpNum-th operation.
type HandlerOp struct {
	HID   core.HID       `json:"hid"`
	OpNum int            `json:"opnum"`
	Kind  HandlerOpKind  `json:"kind"`
	Event core.EventName `json:"event,omitempty"` // emit and unregister
	// Events is the set of event names for register operations.
	Events []core.EventName `json:"events,omitempty"`
	Fn     core.FunctionID  `json:"fn,omitempty"` // register and unregister
}

// AccessType distinguishes variable-log entries.
type AccessType uint8

const (
	AccessRead AccessType = iota
	AccessWrite
)

func (a AccessType) String() string {
	if a == AccessRead {
		return "read"
	}
	return "write"
}

// VarLogEntry is one entry of a variable log (Figure 13): READ entries
// reference the write they observe; WRITE entries carry the value written and
// reference the write they overwrite (absent for lazily-logged writes).
type VarLogEntry struct {
	Op      core.Op    `json:"op"`
	Type    AccessType `json:"type"`
	Value   value.V    `json:"value,omitempty"` // writes only
	HasPrec bool       `json:"hasPrec,omitempty"`
	Prec    core.Op    `json:"prec,omitempty"`
}

// TxPos locates an operation inside the transaction logs: the Index-th
// (1-based) operation of transaction TID of request RID.
type TxPos struct {
	RID   core.RID  `json:"rid"`
	TID   core.TxID `json:"tid"`
	Index int       `json:"index"`
}

// ScanRead is one row of a range read's alleged result set: the key and the
// position of its dictating write.
type ScanRead struct {
	Key      string `json:"key"`
	ReadFrom TxPos  `json:"readFrom"`
}

// TxOp is one entry of a transaction log (C.1.3): the operation's issuing
// handler position, its type, the key (PUT/GET; the prefix for SCAN), the
// written contents (PUT), the position of the dictating write (GET; nil when
// the row was absent), and the alleged result set (SCAN).
type TxOp struct {
	HID      core.HID      `json:"hid"`
	OpNum    int           `json:"opnum"`
	Type     core.TxOpType `json:"type"`
	Key      string        `json:"key,omitempty"`
	Contents value.V       `json:"contents,omitempty"`
	ReadFrom *TxPos        `json:"readFrom,omitempty"`
	ReadSet  []ScanRead    `json:"readSet,omitempty"`
}

// TxLog is the ordered operation log of one transaction.
type TxLog struct {
	RID core.RID  `json:"rid"`
	TID core.TxID `json:"tid"`
	Ops []TxOp    `json:"ops"`
}

// TxOrderEvent is one entry of the alleged begin/commit order (snapshot
// isolation only): Kind 0 is begin, 1 is commit.
type TxOrderEvent struct {
	Kind uint8     `json:"kind"`
	RID  core.RID  `json:"rid"`
	TID  core.TxID `json:"tid"`
}

// NondetEntry records the result of one non-deterministic operation (§5).
type NondetEntry struct {
	Op    core.Op `json:"op"`
	Value value.V `json:"value"`
}

// Advice is everything the untrusted server reports for one audit period.
type Advice struct {
	Mode Mode `json:"mode"`

	// Tags maps each request to its control-flow group tag (§4.1):
	// requests with equal tags allegedly replay together.
	Tags map[core.RID]string `json:"tags"`

	// OpCounts maps each executed handler activation to the number of
	// operations it issued (C.1.3's opcounts).
	OpCounts map[core.RID]map[core.HID]int `json:"opcounts"`

	// ResponseEmittedBy names, per request, the handler that delivered the
	// response and how many operations it had issued beforehand.
	ResponseEmittedBy map[core.RID]OpAt `json:"responseEmittedBy"`

	// HandlerLogs holds each request's ordered handler-operation log (§4.1).
	HandlerLogs map[core.RID][]HandlerOp `json:"handlerLogs"`

	// VarLogs holds each loggable variable's log (§4.2, Figure 13).
	VarLogs map[core.VarID][]VarLogEntry `json:"varLogs"`

	// TxLogs holds the per-transaction operation logs (§4.4).
	TxLogs []TxLog `json:"txLogs"`

	// WriteOrder is the alleged global order of installed writes (§4.4),
	// derived from the store's binlog at an honest server.
	WriteOrder []TxPos `json:"writeOrder"`

	// TxOrder is the alleged global begin/commit order, present only when
	// the store runs snapshot isolation (Adya's G-SI phenomena are defined
	// over it).
	TxOrder []TxOrderEvent `json:"txOrder,omitempty"`

	// Nondet holds recorded non-deterministic results (§5).
	Nondet []NondetEntry `json:"nondet"`
}

// New returns an empty advice in the given mode with all maps allocated.
func New(mode Mode) *Advice {
	return &Advice{
		Mode:              mode,
		Tags:              make(map[core.RID]string),
		OpCounts:          make(map[core.RID]map[core.HID]int),
		ResponseEmittedBy: make(map[core.RID]OpAt),
		HandlerLogs:       make(map[core.RID][]HandlerOp),
		VarLogs:           make(map[core.VarID][]VarLogEntry),
	}
}

// Marshal serializes the advice; the result's length is the advice size the
// Figure 8 experiments report.
func (a *Advice) Marshal() ([]byte, error) {
	return json.Marshal(a)
}

// Unmarshal parses serialized advice.
func Unmarshal(data []byte) (*Advice, error) {
	var a Advice
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// Size returns the size of the advice in the binary wire format — the bytes
// a server would ship to the verifier, which is what the Figure 8
// experiments report.
func (a *Advice) Size() int {
	return len(a.MarshalBinary())
}

// Clone deep-copies the advice via serialization; attack tests mutate clones
// so one honest run can feed many adversarial audits.
func (a *Advice) Clone() *Advice {
	b, err := a.Marshal()
	if err != nil {
		panic("advice: marshal failed: " + err.Error())
	}
	out, err := Unmarshal(b)
	if err != nil {
		panic("advice: unmarshal failed: " + err.Error())
	}
	return out
}
