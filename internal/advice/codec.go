package advice

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// This file implements the compact binary wire format for advice. Advice is
// measured (Figure 8) and shipped from server to verifier on every audit, and
// the verifier's turnaround time includes decoding it, so the codec matters
// to the evaluation. JSON remains available (Marshal/Unmarshal) for
// debugging and for the attack tests' structured mutation, but the harness
// moves advice in this format.
//
// The format is deliberately simple — tag bytes, unsigned varints, explicit
// lengths — and the decoder treats its input as untrusted: every length is
// bounds-checked and any malformation yields an error rather than a panic.

const codecMagic = "KADV2\x00"

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(x uint64) { e.buf = binary.AppendUvarint(e.buf, x) }
func (e *encoder) intv(x int)       { e.uvarint(uint64(x)) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) boolb(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Values use the canonical binary encoding in internal/value — the same
// bytes the epoch log's trace segments carry, so one codec (and one set of
// hostile-input clamps) serves both channels.
func (e *encoder) value(v value.V) {
	e.buf = value.AppendBinary(e.buf, v)
}

func (e *encoder) op(o core.Op) {
	e.str(string(o.RID))
	e.str(string(o.HID))
	e.intv(o.Num)
}

func (e *encoder) txPos(p TxPos) {
	e.str(string(p.RID))
	e.str(string(p.TID))
	e.intv(p.Index)
}

// MarshalBinary encodes the advice in the compact wire format. Map-valued
// sections are emitted in sorted key order, so equal advice encodes to equal
// bytes.
func (a *Advice) MarshalBinary() []byte {
	e := &encoder{buf: make([]byte, 0, 1<<16)}
	e.buf = append(e.buf, codecMagic...)
	e.str(string(a.Mode))

	rids := make([]string, 0, len(a.Tags))
	for rid := range a.Tags {
		rids = append(rids, string(rid))
	}
	sort.Strings(rids)
	e.uvarint(uint64(len(rids)))
	for _, rid := range rids {
		e.str(rid)
		e.str(a.Tags[core.RID(rid)])
	}

	crids := make([]string, 0, len(a.OpCounts))
	for rid := range a.OpCounts {
		crids = append(crids, string(rid))
	}
	sort.Strings(crids)
	e.uvarint(uint64(len(crids)))
	for _, rid := range crids {
		counts := a.OpCounts[core.RID(rid)]
		hids := make([]string, 0, len(counts))
		for hid := range counts {
			hids = append(hids, string(hid))
		}
		sort.Strings(hids)
		e.str(rid)
		e.uvarint(uint64(len(hids)))
		for _, hid := range hids {
			e.str(hid)
			e.intv(counts[core.HID(hid)])
		}
	}

	rrids := make([]string, 0, len(a.ResponseEmittedBy))
	for rid := range a.ResponseEmittedBy {
		rrids = append(rrids, string(rid))
	}
	sort.Strings(rrids)
	e.uvarint(uint64(len(rrids)))
	for _, rid := range rrids {
		at := a.ResponseEmittedBy[core.RID(rid)]
		e.str(rid)
		e.str(string(at.HID))
		e.intv(at.OpNum)
	}

	hrids := make([]string, 0, len(a.HandlerLogs))
	for rid := range a.HandlerLogs {
		hrids = append(hrids, string(rid))
	}
	sort.Strings(hrids)
	e.uvarint(uint64(len(hrids)))
	for _, rid := range hrids {
		log := a.HandlerLogs[core.RID(rid)]
		e.str(rid)
		e.uvarint(uint64(len(log)))
		for _, op := range log {
			e.str(string(op.HID))
			e.intv(op.OpNum)
			e.buf = append(e.buf, byte(op.Kind))
			e.str(string(op.Event))
			e.uvarint(uint64(len(op.Events)))
			for _, ev := range op.Events {
				e.str(string(ev))
			}
			e.str(string(op.Fn))
		}
	}

	vids := make([]string, 0, len(a.VarLogs))
	for id := range a.VarLogs {
		vids = append(vids, string(id))
	}
	sort.Strings(vids)
	e.uvarint(uint64(len(vids)))
	for _, id := range vids {
		entries := a.VarLogs[core.VarID(id)]
		e.str(id)
		e.uvarint(uint64(len(entries)))
		for _, en := range entries {
			e.op(en.Op)
			e.buf = append(e.buf, byte(en.Type))
			e.value(en.Value)
			e.boolb(en.HasPrec)
			if en.HasPrec {
				e.op(en.Prec)
			}
		}
	}

	e.uvarint(uint64(len(a.TxLogs)))
	for _, tl := range a.TxLogs {
		e.str(string(tl.RID))
		e.str(string(tl.TID))
		e.uvarint(uint64(len(tl.Ops)))
		for _, op := range tl.Ops {
			e.txOpBody(&op)
		}
	}

	e.uvarint(uint64(len(a.WriteOrder)))
	for _, p := range a.WriteOrder {
		e.txPos(p)
	}

	e.uvarint(uint64(len(a.TxOrder)))
	for _, ev := range a.TxOrder {
		e.buf = append(e.buf, ev.Kind)
		e.str(string(ev.RID))
		e.str(string(ev.TID))
	}

	e.uvarint(uint64(len(a.Nondet)))
	for _, n := range a.Nondet {
		e.op(n.Op)
		e.value(n.Value)
	}
	return e.buf
}

// errTruncated is returned whenever the decoder runs out of input.
var errTruncated = errors.New("advice: truncated input")

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return x, nil
}

// length reads a collection length and sanity-bounds it against the
// remaining input so hostile advice cannot force huge allocations.
func (d *decoder) length() (int, error) {
	return d.lengthElems(1)
}

// lengthElems reads a collection length whose elements each encode to at
// least minElemSize bytes, and clamps the attacker-declared count against
// the remaining input divided by that size. Without the divisor a
// length-inflated blob can force allocations ~sizeof(element) times larger
// than the input itself (a few declared bytes preallocating hundreds of
// megabytes of decoded structs); with it, decode-side memory stays
// proportional to input size.
func (d *decoder) lengthElems(minElemSize int) (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(len(d.buf)-d.off)/uint64(minElemSize) {
		return 0, fmt.Errorf("advice: declared length %d exceeds remaining input", x)
	}
	return int(x), nil
}

// Minimum wire sizes of variable-count elements, used to clamp declared
// lengths: an empty string is 1 byte (its length varint), an op is three
// such fields, and so on. These are lower bounds on what the corresponding
// decode method consumes — update them together with the format.
const (
	minStrSize       = 1
	minOpSize        = 3 * minStrSize // rid + hid + num
	minTxPosSize     = 3 * minStrSize // rid + tid + index
	minHandlerOpSize = 6              // hid + opnum + kind + event + events-len + fn
	minVarEntrySize  = minOpSize + 3  // op + type + value-tag + hasPrec
	minTxLogSize     = 3              // rid + tid + ops-len
	minTxOpSize      = 7              // hid + opnum + type + key + contents + readFrom + readSet-len
	minScanReadSize  = minStrSize + minTxPosSize
	minTxOrderSize   = 3 // kind + rid + tid
	minNondetSize    = minOpSize + 1
)

func (d *decoder) intv() (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > math.MaxInt32 {
		return 0, fmt.Errorf("advice: integer %d out of range", x)
	}
	return int(x), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.length()
	if err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *decoder) bytev() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) boolv() (bool, error) {
	b, err := d.bytev()
	return b != 0, err
}

func (d *decoder) value() (value.V, error) {
	v, n, err := value.DecodeBinary(d.buf[d.off:])
	if err != nil {
		return nil, err
	}
	d.off += n
	return v, nil
}

func (d *decoder) op() (core.Op, error) {
	rid, err := d.str()
	if err != nil {
		return core.Op{}, err
	}
	hid, err := d.str()
	if err != nil {
		return core.Op{}, err
	}
	num, err := d.intv()
	if err != nil {
		return core.Op{}, err
	}
	return core.Op{RID: core.RID(rid), HID: core.HID(hid), Num: num}, nil
}

func (d *decoder) txPos() (TxPos, error) {
	rid, err := d.str()
	if err != nil {
		return TxPos{}, err
	}
	tid, err := d.str()
	if err != nil {
		return TxPos{}, err
	}
	idx, err := d.intv()
	if err != nil {
		return TxPos{}, err
	}
	return TxPos{RID: core.RID(rid), TID: core.TxID(tid), Index: idx}, nil
}

// UnmarshalBinary decodes advice from the compact wire format, validating
// structure (not semantics — that is the audit's job).
func UnmarshalBinary(data []byte) (a *Advice, err error) {
	d := &decoder{buf: data}
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return nil, errors.New("advice: bad magic")
	}
	d.off = len(codecMagic)

	mode, err := d.str()
	if err != nil {
		return nil, err
	}
	a = New(Mode(mode))

	n, err := d.length()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rid, err := d.str()
		if err != nil {
			return nil, err
		}
		tag, err := d.str()
		if err != nil {
			return nil, err
		}
		a.Tags[core.RID(rid)] = tag
	}

	if n, err = d.length(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rid, err := d.str()
		if err != nil {
			return nil, err
		}
		m, err := d.lengthElems(minStrSize + 1)
		if err != nil {
			return nil, err
		}
		counts := make(map[core.HID]int, m)
		for j := 0; j < m; j++ {
			hid, err := d.str()
			if err != nil {
				return nil, err
			}
			c, err := d.intv()
			if err != nil {
				return nil, err
			}
			counts[core.HID(hid)] = c
		}
		a.OpCounts[core.RID(rid)] = counts
	}

	if n, err = d.length(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rid, err := d.str()
		if err != nil {
			return nil, err
		}
		hid, err := d.str()
		if err != nil {
			return nil, err
		}
		opnum, err := d.intv()
		if err != nil {
			return nil, err
		}
		a.ResponseEmittedBy[core.RID(rid)] = OpAt{HID: core.HID(hid), OpNum: opnum}
	}

	if n, err = d.length(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rid, err := d.str()
		if err != nil {
			return nil, err
		}
		m, err := d.lengthElems(minHandlerOpSize)
		if err != nil {
			return nil, err
		}
		log := make([]HandlerOp, m)
		for j := range log {
			if log[j], err = d.handlerOp(); err != nil {
				return nil, err
			}
		}
		a.HandlerLogs[core.RID(rid)] = log
	}

	if n, err = d.length(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		id, err := d.str()
		if err != nil {
			return nil, err
		}
		m, err := d.lengthElems(minVarEntrySize)
		if err != nil {
			return nil, err
		}
		entries := make([]VarLogEntry, m)
		for j := range entries {
			if entries[j], err = d.varEntry(); err != nil {
				return nil, err
			}
		}
		a.VarLogs[core.VarID(id)] = entries
	}

	if n, err = d.lengthElems(minTxLogSize); err != nil {
		return nil, err
	}
	a.TxLogs = make([]TxLog, n)
	for i := range a.TxLogs {
		if a.TxLogs[i], err = d.txLog(); err != nil {
			return nil, err
		}
	}

	if n, err = d.lengthElems(minTxPosSize); err != nil {
		return nil, err
	}
	a.WriteOrder = make([]TxPos, n)
	for i := range a.WriteOrder {
		if a.WriteOrder[i], err = d.txPos(); err != nil {
			return nil, err
		}
	}

	if n, err = d.lengthElems(minTxOrderSize); err != nil {
		return nil, err
	}
	if n > 0 {
		a.TxOrder = make([]TxOrderEvent, n)
		for i := range a.TxOrder {
			if a.TxOrder[i].Kind, err = d.bytev(); err != nil {
				return nil, err
			}
			rid, err := d.str()
			if err != nil {
				return nil, err
			}
			tid, err := d.str()
			if err != nil {
				return nil, err
			}
			a.TxOrder[i].RID, a.TxOrder[i].TID = core.RID(rid), core.TxID(tid)
		}
	}

	if n, err = d.lengthElems(minNondetSize); err != nil {
		return nil, err
	}
	a.Nondet = make([]NondetEntry, n)
	for i := range a.Nondet {
		if a.Nondet[i].Op, err = d.op(); err != nil {
			return nil, err
		}
		if a.Nondet[i].Value, err = d.value(); err != nil {
			return nil, err
		}
	}

	if d.off != len(d.buf) {
		return nil, fmt.Errorf("advice: %d trailing bytes", len(d.buf)-d.off)
	}
	return a, nil
}

func (d *decoder) handlerOp() (HandlerOp, error) {
	var op HandlerOp
	hid, err := d.str()
	if err != nil {
		return op, err
	}
	op.HID = core.HID(hid)
	if op.OpNum, err = d.intv(); err != nil {
		return op, err
	}
	kind, err := d.bytev()
	if err != nil {
		return op, err
	}
	op.Kind = HandlerOpKind(kind)
	ev, err := d.str()
	if err != nil {
		return op, err
	}
	op.Event = core.EventName(ev)
	m, err := d.length()
	if err != nil {
		return op, err
	}
	if m > 0 {
		op.Events = make([]core.EventName, m)
		for i := range op.Events {
			s, err := d.str()
			if err != nil {
				return op, err
			}
			op.Events[i] = core.EventName(s)
		}
	}
	fn, err := d.str()
	if err != nil {
		return op, err
	}
	op.Fn = core.FunctionID(fn)
	return op, nil
}

func (d *decoder) varEntry() (VarLogEntry, error) {
	var en VarLogEntry
	var err error
	if en.Op, err = d.op(); err != nil {
		return en, err
	}
	typ, err := d.bytev()
	if err != nil {
		return en, err
	}
	en.Type = AccessType(typ)
	if en.Value, err = d.value(); err != nil {
		return en, err
	}
	if en.HasPrec, err = d.boolv(); err != nil {
		return en, err
	}
	if en.HasPrec {
		if en.Prec, err = d.op(); err != nil {
			return en, err
		}
	}
	return en, nil
}

func (d *decoder) txLog() (TxLog, error) {
	var tl TxLog
	rid, err := d.str()
	if err != nil {
		return tl, err
	}
	tid, err := d.str()
	if err != nil {
		return tl, err
	}
	tl.RID, tl.TID = core.RID(rid), core.TxID(tid)
	n, err := d.lengthElems(minTxOpSize)
	if err != nil {
		return tl, err
	}
	tl.Ops = make([]TxOp, n)
	for i := range tl.Ops {
		var op TxOp
		hid, err := d.str()
		if err != nil {
			return tl, err
		}
		op.HID = core.HID(hid)
		if op.OpNum, err = d.intv(); err != nil {
			return tl, err
		}
		typ, err := d.bytev()
		if err != nil {
			return tl, err
		}
		op.Type = core.TxOpType(typ)
		if op.Key, err = d.str(); err != nil {
			return tl, err
		}
		if op.Contents, err = d.value(); err != nil {
			return tl, err
		}
		has, err := d.boolv()
		if err != nil {
			return tl, err
		}
		if has {
			p, err := d.txPos()
			if err != nil {
				return tl, err
			}
			op.ReadFrom = &p
		}
		nrs, err := d.lengthElems(minScanReadSize)
		if err != nil {
			return tl, err
		}
		if nrs > 0 {
			op.ReadSet = make([]ScanRead, nrs)
			for j := range op.ReadSet {
				if op.ReadSet[j].Key, err = d.str(); err != nil {
					return tl, err
				}
				if op.ReadSet[j].ReadFrom, err = d.txPos(); err != nil {
					return tl, err
				}
			}
		}
		tl.Ops[i] = op
	}
	return tl, nil
}

// Streaming entry encoders. The online server writes advice continuously
// while serving (the paper's artifact streams advice files during
// execution); these helpers let it encode each entry at logging time, which
// is where Karousos's server-side overhead genuinely lives — encoding a
// logged write costs O(value size), so write-heavy workloads pay more
// (Figure 6).

// AppendVarEntry appends the wire encoding of one variable-log entry.
func AppendVarEntry(dst []byte, en *VarLogEntry) []byte {
	e := &encoder{buf: dst}
	e.op(en.Op)
	e.buf = append(e.buf, byte(en.Type))
	e.value(en.Value)
	e.boolb(en.HasPrec)
	if en.HasPrec {
		e.op(en.Prec)
	}
	return e.buf
}

// AppendHandlerOp appends the wire encoding of one handler-log entry.
func AppendHandlerOp(dst []byte, op *HandlerOp) []byte {
	e := &encoder{buf: dst}
	e.str(string(op.HID))
	e.intv(op.OpNum)
	e.buf = append(e.buf, byte(op.Kind))
	e.str(string(op.Event))
	e.uvarint(uint64(len(op.Events)))
	for _, ev := range op.Events {
		e.str(string(ev))
	}
	e.str(string(op.Fn))
	return e.buf
}

// AppendTxOp appends the wire encoding of one transaction-log entry.
func AppendTxOp(dst []byte, op *TxOp) []byte {
	e := &encoder{buf: dst}
	e.txOpBody(op)
	return e.buf
}

func (e *encoder) txOpBody(op *TxOp) {
	e.str(string(op.HID))
	e.intv(op.OpNum)
	e.buf = append(e.buf, byte(op.Type))
	e.str(op.Key)
	e.value(op.Contents)
	e.boolb(op.ReadFrom != nil)
	if op.ReadFrom != nil {
		e.txPos(*op.ReadFrom)
	}
	e.uvarint(uint64(len(op.ReadSet)))
	for _, sr := range op.ReadSet {
		e.str(sr.Key)
		e.txPos(sr.ReadFrom)
	}
}
