package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
)

// LocalConfig describes an in-process shard topology: N collectors on
// loopback listeners behind one gateway, sharing a topology root.
type LocalConfig struct {
	// Spec is the application every shard serves.
	Spec harness.AppSpec
	// Root is the topology root; shardmap.json and the shard-NN epoch-log
	// directories are created under it.
	Root string
	// Map is the topology. Validate must pass.
	Map shard.Map
	// EpochRequests, Seed, Commit, Limits, FS, Backoff pass through to each
	// shard's collector. Shard s serves with Seed+s so the shards'
	// schedules differ the way independent processes' would.
	EpochRequests int
	EpochMaxAge   time.Duration
	Seed          int64
	Commit        collectorhttp.CommitMode
	Limits        verifier.Limits
	FS            iofault.FS
	Backoff       iofault.Backoff
	// MaxInflight and MaxAuditLag pass through to each shard's admission
	// control; AuditProgress, when set, is called with the shard index.
	MaxInflight   int
	MaxAuditLag   int
	AuditProgress func(shardIndex int) (lastAudited uint64, ok bool)
	// Transport and Tuning pass through to the gateway — Transport is the
	// netfault plug point for partition scenarios, Tuning the resilience
	// knobs.
	Transport http.RoundTripper
	Tuning    Tuning
}

// Local is a running in-process topology. Chaos scenarios and the CLI's
// -local mode use it; a real deployment runs one collector process per
// shard and a standalone gateway instead.
type Local struct {
	Map  shard.Map
	Root string
	// Gateway is the current gateway instance. Prefer Handler() for HTTP
	// wiring: it survives RestartGateway, a direct Gateway.Handler() does
	// not.
	Gateway *Gateway

	cfg      LocalConfig
	cols     []*collectorhttp.Collector
	servers  []*httptest.Server
	backends []string // last known backend URL per shard, live or not

	gwMu sync.Mutex
}

// NewLocal writes the shard map, boots one collector per shard on a
// loopback listener, and fronts them with a gateway.
func NewLocal(cfg LocalConfig) (*Local, error) {
	if err := shard.WriteMap(cfg.FS, cfg.Root, cfg.Map); err != nil {
		return nil, err
	}
	t := &Local{
		Map:      cfg.Map,
		Root:     cfg.Root,
		cfg:      cfg,
		cols:     make([]*collectorhttp.Collector, cfg.Map.Shards),
		servers:  make([]*httptest.Server, cfg.Map.Shards),
		backends: make([]string, cfg.Map.Shards),
	}
	for s := range t.backends {
		if err := t.boot(s); err != nil {
			t.Close() //karousos:errladder-ok partial-boot cleanup; the boot failure is the error that surfaces
			return nil, err
		}
	}
	if err := t.newGateway(); err != nil {
		t.Close() //karousos:errladder-ok partial-boot cleanup; the gateway failure is the error that surfaces
		return nil, err
	}
	return t, nil
}

// newGateway builds a fresh gateway over the last known backend URLs.
func (t *Local) newGateway() error {
	gw, err := New(Config{
		Map:       t.cfg.Map,
		Backends:  append([]string(nil), t.backends...),
		Transport: t.cfg.Transport,
		Tuning:    t.cfg.Tuning,
	})
	if err != nil {
		return err
	}
	t.gwMu.Lock()
	t.Gateway = gw
	t.gwMu.Unlock()
	return nil
}

// gateway returns the current gateway under the swap lock.
func (t *Local) gateway() *Gateway {
	t.gwMu.Lock()
	defer t.gwMu.Unlock()
	return t.Gateway
}

// Handler returns an http.Handler that always dispatches to the current
// gateway, so a server built on it survives RestartGateway.
func (t *Local) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.gateway().Handler().ServeHTTP(w, r)
	})
}

// RestartGateway replaces the gateway with a fresh instance — empty
// counters, closed breakers — the way a restarted stateless front-door
// process rejoins. The shard collectors are untouched: the gateway holds
// no audit state to lose.
func (t *Local) RestartGateway() error { return t.newGateway() }

// BackendURL returns shard s's last known backend URL.
func (t *Local) BackendURL(s int) string { return t.backends[s] }

// boot starts (or restarts) shard s's collector on its epoch-log
// directory. Reopening a directory a crashed incarnation wrote is a
// collector restart: the partial epoch seals degraded, and the next epoch
// is marked fresh (collectorhttp.recoverIncarnation).
func (t *Local) boot(s int) error {
	ccfg := collectorhttp.Config{
		Spec:          t.cfg.Spec,
		Dir:           shard.Dir(t.cfg.Root, s),
		EpochRequests: t.cfg.EpochRequests,
		EpochMaxAge:   t.cfg.EpochMaxAge,
		Seed:          t.cfg.Seed + int64(s),
		Commit:        t.cfg.Commit,
		Limits:        t.cfg.Limits,
		FS:            t.cfg.FS,
		Backoff:       t.cfg.Backoff,
		MaxInflight:   t.cfg.MaxInflight,
		MaxAuditLag:   t.cfg.MaxAuditLag,
	}
	if t.cfg.AuditProgress != nil {
		ccfg.AuditProgress = func() (uint64, bool) { return t.cfg.AuditProgress(s) }
	}
	col, err := collectorhttp.New(ccfg)
	if err != nil {
		return fmt.Errorf("gateway: shard %d collector: %w", s, err)
	}
	t.cols[s] = col
	t.servers[s] = httptest.NewServer(col.Handler())
	t.backends[s] = t.servers[s].URL
	return nil
}

// Collector returns shard s's live collector (nil while crashed).
func (t *Local) Collector(s int) *collectorhttp.Collector { return t.cols[s] }

// Crash kills shard s the way a killed process would: listener gone,
// no seal, the active epoch's tail left for the next incarnation.
func (t *Local) Crash(s int) error {
	if t.servers[s] != nil {
		t.servers[s].Close()
		t.servers[s] = nil
	}
	col := t.cols[s]
	t.cols[s] = nil
	if col == nil {
		return nil
	}
	return col.Crash()
}

// Restart boots a fresh incarnation of shard s on its directory and
// repoints the gateway at the new listener.
func (t *Local) Restart(s int) error {
	if t.cols[s] != nil {
		return fmt.Errorf("gateway: shard %d is still running", s)
	}
	if err := t.boot(s); err != nil {
		return err
	}
	return t.gateway().SetBackend(s, t.servers[s].URL)
}

// Close seals and stops every live shard. The first error wins; the rest
// still close.
func (t *Local) Close() error {
	var first error
	for s := range t.cols {
		if t.servers[s] != nil {
			t.servers[s].Close()
			t.servers[s] = nil
		}
		if t.cols[s] == nil {
			continue
		}
		if err := t.cols[s].Close(); err != nil && first == nil {
			first = err
		}
		t.cols[s] = nil
	}
	return first
}
