package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/workload"
)

func wikiMap(shards int) shard.Map {
	return shard.Map{Shards: shards, KeyFields: []string{"id", "page"}}
}

func postInvoke(t *testing.T, url string, input value.V) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRoutingMatchesMap: every request lands on the backend the map's own
// hash names, and the response says which (X-Karousos-Shard).
func TestRoutingMatchesMap(t *testing.T) {
	m := wikiMap(4)
	top, err := NewLocal(LocalConfig{Spec: harness.WikiApp(), Root: t.TempDir(), Map: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Gateway.Handler())
	defer ts.Close()

	for _, r := range workload.Wiki(24, 5) {
		resp := postInvoke(t, ts.URL, r.Input)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke: status %d", resp.StatusCode)
		}
		got, err := strconv.Atoi(resp.Header.Get(ShardHeader))
		if err != nil {
			t.Fatalf("bad %s header: %v", ShardHeader, err)
		}
		if want := m.ShardOf(value.Normalize(r.Input)); got != want {
			t.Fatalf("routed to shard %d, map says %d for %v", got, want, r.Input)
		}
	}
	total := uint64(0)
	for _, c := range top.Gateway.Counters() {
		total += c.Routed
	}
	if total != 24 {
		t.Fatalf("routed total = %d, want 24", total)
	}
}

// TestBackpressurePassthrough: a backend's 429 reaches the client with its
// Retry-After hint intact, counted as shed for that shard; a down backend
// yields 503 with the gateway's own Retry-After hint, counted as an error.
func TestBackpressurePassthrough(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "admission window full", http.StatusTooManyRequests)
	}))
	defer shedding.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	// One-field map: "k" chooses the shard; find one key per backend.
	m := shard.Map{Shards: 2, KeyFields: []string{"k"}}
	var k0, k1 value.V
	for i := 0; i < 64 && (k0 == nil || k1 == nil); i++ {
		in := value.Normalize(value.Map("k", fmt.Sprintf("key-%d", i)))
		if m.ShardOf(in) == 0 && k0 == nil {
			k0 = in
		} else if m.ShardOf(in) == 1 && k1 == nil {
			k1 = in
		}
	}
	gw, err := New(Config{Map: m, Backends: []string{shedding.URL, dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	resp := postInvoke(t, ts.URL, k0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed backend: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the backend's hint", ra)
	}
	resp = postInvoke(t, ts.URL, k1)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead backend: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 has no Retry-After hint")
	}
	counters := gw.Counters()
	if counters[0].Shed != 1 || counters[1].Errors != 1 {
		t.Fatalf("counters = %+v, want shard0 shed=1, shard1 errors=1", counters)
	}
	if counters[1].Retries == 0 {
		t.Fatalf("counters = %+v, want refused dials retried before degrading", counters)
	}
}

// TestReadyzAggregates: the topology is ready only when every shard is.
func TestReadyzAggregates(t *testing.T) {
	top, err := NewLocal(LocalConfig{Spec: harness.WikiApp(), Root: t.TempDir(), Map: wikiMap(2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Gateway.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all shards up: readyz %d", resp.StatusCode)
	}
	if err := top.Crash(1); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("one shard down: readyz %d, want 503 (%s)", resp.StatusCode, blob)
	}
	if err := top.Restart(1); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restart: readyz %d", resp.StatusCode)
	}
}

// TestSealFanoutAndStatus: /seal reaches every backend; /status reports
// per-shard collector state plus gateway counters.
func TestSealFanoutAndStatus(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(2)
	top, err := NewLocal(LocalConfig{Spec: harness.WikiApp(), Root: root, Map: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Gateway.Handler())
	defer ts.Close()

	for _, r := range workload.Wiki(16, 9) {
		if resp := postInvoke(t, ts.URL, r.Input); resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke: status %d", resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal: status %d", resp.StatusCode)
	}
	var sealed struct {
		Shards []struct {
			Shard  int `json:"shard"`
			Status int `json:"status"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sealed); err != nil {
		t.Fatal(err)
	}
	if len(sealed.Shards) != 2 {
		t.Fatalf("seal fanned out to %d shards", len(sealed.Shards))
	}
	for _, s := range sealed.Shards {
		// 200 sealed a manifest, 204 that shard's active epoch was empty.
		if s.Status != http.StatusOK && s.Status != http.StatusNoContent {
			t.Fatalf("shard %d seal status %d", s.Shard, s.Status)
		}
	}

	// The map file is on disk for offline auditors.
	if _, err := shard.ReadMap(root); err != nil {
		t.Fatalf("topology root has no readable shard map: %v", err)
	}

	sresp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status struct {
		Shards   int             `json:"shards"`
		Counters []ShardCounters `json:"counters"`
		Backends []struct {
			Shard  int `json:"shard"`
			Status int `json:"status"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Shards != 2 || len(status.Backends) != 2 || len(status.Counters) != 2 {
		t.Fatalf("status shape: %+v", status)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Map: shard.Map{Shards: 2}, Backends: []string{"http://x"}}); err == nil {
		t.Fatal("backend/shard count mismatch accepted")
	}
	if _, err := New(Config{Map: shard.Map{Shards: 0}}); err == nil {
		t.Fatal("invalid map accepted")
	}
	gw, err := New(Config{Map: shard.Map{Shards: 1}, Backends: []string{"http://x"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.SetBackend(5, "http://y"); err == nil {
		t.Fatal("out-of-range SetBackend accepted")
	}
}
