package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/netfault"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/workload"
)

// fastTuning keeps retry/breaker timing test-sized.
func fastTuning() Tuning {
	return Tuning{
		PerTryTimeout:   500 * time.Millisecond,
		MaxRetries:      2,
		BreakerFailures: 3,
		BreakerOpenFor:  80 * time.Millisecond,
		RetryAfter:      time.Second,
		Backoff:         netfault.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
	}
}

// TestRetryTransparent: a refused dial (provably unsent) is retried and
// the client sees a clean 200; the backend executes the request exactly
// once.
func TestRetryTransparent(t *testing.T) {
	top, err := NewLocal(LocalConfig{Spec: harness.WikiApp(), Root: t.TempDir(), Map: wikiMap(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()

	in := netfault.NewInjector()
	if err := in.Arm(netfault.OpConnRefused, netfault.ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{
		Map: wikiMap(1), Backends: []string{top.BackendURL(0)},
		Transport: in.Transport(nil), Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	req := workload.Wiki(1, 3)[0]
	resp := postInvoke(t, ts.URL, req.Input)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d through a transient refusal, want 200", resp.StatusCode)
	}
	c := gw.Counters()[0]
	if c.Retries != 1 || c.Errors != 0 {
		t.Fatalf("counters = %+v, want exactly one retry and no error", c)
	}
	if st := top.Collector(0).Status(); st.Served != 1 {
		t.Fatalf("collector served %d requests, want exactly 1 (no duplicate execution)", st.Served)
	}
}

// TestNoRetryAfterForward: a reset after the request reached the backend
// is ambiguous — the gateway must NOT re-issue it. The client gets 503,
// the backend has executed exactly once.
func TestNoRetryAfterForward(t *testing.T) {
	top, err := NewLocal(LocalConfig{Spec: harness.WikiApp(), Root: t.TempDir(), Map: wikiMap(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()

	in := netfault.NewInjector()
	if err := in.Arm(netfault.OpConnReset, netfault.ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{
		Map: wikiMap(1), Backends: []string{top.BackendURL(0)},
		Transport: in.Transport(nil), Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	req := workload.Wiki(1, 3)[0]
	resp := postInvoke(t, ts.URL, req.Input)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after an ambiguous reset, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 has no Retry-After hint")
	}
	c := gw.Counters()[0]
	if c.Retries != 0 {
		t.Fatalf("counters = %+v: an ambiguous failure was retried", c)
	}
	if st := top.Collector(0).Status(); st.Served != 1 {
		t.Fatalf("collector served %d requests, want exactly 1 — a duplicate means the "+
			"gateway re-issued a non-idempotent request it could not prove unsent", st.Served)
	}
}

// TestBreakerLifecycle: consecutive transport failures open the shard's
// circuit (fast 503 without touching the backend), the open window leads
// to half-open, and a successful probe closes it.
func TestBreakerLifecycle(t *testing.T) {
	m := wikiMap(1)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	tn := fastTuning()
	tn.MaxRetries = -1 // isolate the breaker from retry amplification
	gw, err := New(Config{Map: m, Backends: []string{dead.URL}, Tuning: tn})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	req := workload.Wiki(1, 3)[0]
	for i := 0; i < tn.BreakerFailures; i++ {
		if resp := postInvoke(t, ts.URL, req.Input); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	if st := gw.Breakers()[0]; st.State != "open" || st.Opened != 1 {
		t.Fatalf("breaker = %+v after %d failures, want open", st, tn.BreakerFailures)
	}
	// Open: fast-fail without a backend attempt.
	before := gw.Counters()[0]
	if resp := postInvoke(t, ts.URL, req.Input); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	after := gw.Counters()[0]
	if after.FastFails != before.FastFails+1 || after.Errors != before.Errors {
		t.Fatalf("open breaker did not fast-fail: before %+v after %+v", before, after)
	}

	// Stand the backend back up at the same address the breaker knows.
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer live.Close()
	if err := gw.SetBackend(0, live.URL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(tn.BreakerOpenFor + 20*time.Millisecond)
	// Half-open: the next request is the probe; it succeeds and closes.
	if resp := postInvoke(t, ts.URL, req.Input); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status %d, want 200", resp.StatusCode)
	}
	if st := gw.Breakers()[0]; st.State != "closed" {
		t.Fatalf("breaker = %+v after successful probe, want closed", st)
	}
}

// TestPartialShardDegradation: with one shard's breaker open, only
// requests routing to that shard degrade; the rest serve normally.
func TestPartialShardDegradation(t *testing.T) {
	m := wikiMap(2)
	top, err := NewLocal(LocalConfig{
		Spec: harness.WikiApp(), Root: t.TempDir(), Map: m, Seed: 1, Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()

	victim := 0
	if err := top.Crash(victim); err != nil {
		t.Fatal(err)
	}
	served, degraded := 0, 0
	for _, r := range workload.Wiki(40, 7) {
		s := m.ShardOf(value.Normalize(r.Input))
		resp := postInvoke(t, ts.URL, r.Input)
		if got := resp.Header.Get(ShardHeader); got != strconv.Itoa(s) {
			t.Fatalf("shard header %q, want %d", got, s)
		}
		switch {
		case s == victim && resp.StatusCode == http.StatusServiceUnavailable:
			degraded++
		case s != victim && resp.StatusCode == http.StatusOK:
			served++
		default:
			t.Fatalf("shard %d (victim %d): status %d", s, victim, resp.StatusCode)
		}
	}
	if served == 0 || degraded == 0 {
		t.Fatalf("workload did not exercise both sides: served=%d degraded=%d", served, degraded)
	}
	if st := top.Gateway.Breakers()[victim]; st.Opened == 0 {
		t.Fatalf("victim breaker never opened: %+v", st)
	}
}

// TestSealBestEffort: /seal is always 200 with the per-shard picture; a
// dark shard shows up as failed, the survivors still seal.
func TestSealBestEffort(t *testing.T) {
	top, err := NewLocal(LocalConfig{
		Spec: harness.WikiApp(), Root: t.TempDir(), Map: wikiMap(2), Seed: 1, Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()

	for _, r := range workload.Wiki(16, 9) {
		postInvoke(t, ts.URL, r.Input)
	}
	if err := top.Crash(0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("best-effort seal: status %d, want 200 (one dark shard must not block the others)", resp.StatusCode)
	}
	var out struct {
		Shards []sealResult `json:"shards"`
		Sealed int          `json:"sealed"`
		Failed int          `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Sealed != 1 || out.Failed != 1 || len(out.Shards) != 2 {
		t.Fatalf("seal report %+v, want 1 sealed + 1 failed", out)
	}
	if out.Shards[0].Error == "" {
		t.Fatalf("dark shard 0 reported no error: %+v", out.Shards[0])
	}
	if out.Shards[1].Status != http.StatusOK && out.Shards[1].Status != http.StatusNoContent {
		t.Fatalf("surviving shard 1 did not seal: %+v", out.Shards[1])
	}
}

// TestCrashRestartReadyzAndShardHeader (satellite): /readyz flips
// AND-false while a shard is down, recovers after Restart, and the
// X-Karousos-Shard routing echo is identical across the restart.
func TestCrashRestartReadyzAndShardHeader(t *testing.T) {
	m := wikiMap(3)
	top, err := NewLocal(LocalConfig{
		Spec: harness.WikiApp(), Root: t.TempDir(), Map: m, Seed: 1, Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()

	readyz := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	reqs := workload.Wiki(24, 5)
	echoBefore := make([]string, len(reqs))
	for i, r := range reqs {
		resp := postInvoke(t, ts.URL, r.Input)
		echoBefore[i] = resp.Header.Get(ShardHeader)
		if want := strconv.Itoa(m.ShardOf(value.Normalize(r.Input))); echoBefore[i] != want {
			t.Fatalf("request %d echoed shard %s, map says %s", i, echoBefore[i], want)
		}
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("all up: readyz %d", got)
	}
	if err := top.Crash(2); err != nil {
		t.Fatal(err)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("shard down: readyz %d, want 503 (AND-aggregation)", got)
	}
	if err := top.Restart(2); err != nil {
		t.Fatal(err)
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("after restart: readyz %d, want 200", got)
	}
	// Routing is a pure function of the map: the restarted topology echoes
	// the identical shard for the identical input.
	for i, r := range reqs {
		resp := postInvoke(t, ts.URL, r.Input)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after restart: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(ShardHeader); got != echoBefore[i] {
			t.Fatalf("request %d echoed shard %s after restart, was %s before", i, got, echoBefore[i])
		}
	}
}

// TestGatewayRestartStateless: RestartGateway swaps in a fresh gateway
// (zero counters, closed breakers) behind the same Handler, and routing
// is unchanged — the gateway carries no state that matters.
func TestGatewayRestartStateless(t *testing.T) {
	m := wikiMap(2)
	top, err := NewLocal(LocalConfig{
		Spec: harness.WikiApp(), Root: t.TempDir(), Map: m, Seed: 1, Tuning: fastTuning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()

	reqs := workload.Wiki(12, 11)
	echo := make([]string, len(reqs))
	for i, r := range reqs {
		echo[i] = postInvoke(t, ts.URL, r.Input).Header.Get(ShardHeader)
	}
	if err := top.RestartGateway(); err != nil {
		t.Fatal(err)
	}
	var routed uint64
	for _, c := range top.Gateway.Counters() {
		routed += c.Routed
	}
	if routed != 0 {
		t.Fatalf("restarted gateway carries %d routed counts", routed)
	}
	for i, r := range reqs {
		resp := postInvoke(t, ts.URL, r.Input)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after gateway restart: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(ShardHeader); got != echo[i] {
			t.Fatalf("request %d echoed shard %s after gateway restart, was %s", i, got, echo[i])
		}
	}
}

// TestHedgedProbes: with HedgeAfter set and one sluggish backend, /readyz
// still answers promptly and the hedge counter moves.
func TestHedgedProbes(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		w.Write([]byte(`{"ready":true}`))
	}))
	defer slow.Close()
	tn := fastTuning()
	tn.HedgeAfter = 20 * time.Millisecond
	gw, err := New(Config{Map: wikiMap(1), Backends: []string{slow.URL}, Tuning: tn})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz through slow backend: %d", resp.StatusCode)
	}
	if gw.hedges.Load() == 0 {
		t.Fatal("slow probe did not hedge")
	}
}
