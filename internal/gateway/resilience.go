package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"karousos.dev/karousos/internal/netfault"
)

// Tuning bounds the gateway's resilience machinery. The zero value means
// defaults; every knob has one.
type Tuning struct {
	// PerTryTimeout bounds one proxied attempt (default 2s). This is what
	// turns a blackholed backend into a classified, breaker-countable
	// failure instead of a hung client.
	PerTryTimeout time.Duration
	// MaxRetries bounds extra attempts per /invoke after the first
	// (default 2). Only provably-unsent requests are ever retried —
	// netfault.ClassRetryable — because /invoke is not idempotent.
	MaxRetries int
	// RetryBudget caps stored retry tokens (default 16); RetryBudgetRatio
	// is the fraction of proxied requests that earn a token (default 0.2,
	// i.e. retries may add at most ~20% load on top of offered traffic).
	RetryBudget      float64
	RetryBudgetRatio float64
	// BreakerFailures consecutive transport failures open a shard's
	// circuit (default 5); BreakerOpenFor is the open window before a
	// half-open probe (default 1s).
	BreakerFailures int
	BreakerOpenFor  time.Duration
	// HedgeAfter, when >0, races a second identical GET against any
	// health/status probe still unanswered after this long — idempotent
	// requests only, first answer wins.
	HedgeAfter time.Duration
	// RetryAfter is the hint stamped on gateway-degraded 503s (default 1s).
	RetryAfter time.Duration
	// Backoff shapes the retry delays (zero = 10ms base, 250ms max).
	Backoff netfault.Backoff
}

func (t Tuning) withDefaults() Tuning {
	if t.PerTryTimeout <= 0 {
		t.PerTryTimeout = 2 * time.Second
	}
	if t.MaxRetries < 0 {
		t.MaxRetries = 0
	} else if t.MaxRetries == 0 {
		t.MaxRetries = 2
	}
	if t.RetryAfter <= 0 {
		t.RetryAfter = time.Second
	}
	if t.Backoff.Base <= 0 {
		t.Backoff.Base = 10 * time.Millisecond
	}
	if t.Backoff.Max <= 0 {
		t.Backoff.Max = 250 * time.Millisecond
	}
	return t
}

// proxied is one backend response buffered in full. Buffering before
// writing to the client is what keeps a mid-body connection cut from
// tearing an already-committed 200: a truncated read surfaces here as a
// transport failure and the client gets a clean 503 instead.
type proxied struct {
	status int
	header http.Header
	body   []byte
}

// maxProxyBody bounds one buffered backend response.
const maxProxyBody = 4 << 20

// forward proxies one /invoke body to shard s with per-try timeouts,
// classified retries under the global budget, and breaker accounting.
func (g *Gateway) forward(ctx context.Context, s int, raw []byte) (*proxied, error) {
	g.budget.earn()
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := g.tryOnce(ctx, s, raw)
		if err == nil {
			g.breakers[s].onSuccess()
			return res, nil
		}
		g.breakers[s].onFailure()
		lastErr = err
		// The ladder decides: only a provably-unsent request may go again.
		if netfault.Classify(err) != netfault.ClassRetryable {
			return nil, err
		}
		if attempt >= g.tuning.MaxRetries || ctx.Err() != nil {
			return nil, err
		}
		if !g.budget.spend() {
			g.count(s, func(c *ShardCounters) { c.BudgetDenied++ })
			return nil, err
		}
		g.count(s, func(c *ShardCounters) { c.Retries++ })
		if err := sleepCtx(ctx, g.tuning.Backoff.Delay(attempt)); err != nil {
			return nil, lastErr
		}
	}
}

// tryOnce performs one bounded proxy attempt and buffers the response.
func (g *Gateway) tryOnce(ctx context.Context, s int, raw []byte) (*proxied, error) {
	tctx, cancel := context.WithTimeout(ctx, g.tuning.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, g.backend(s)+"/invoke", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		// Status arrived, body did not: the backend executed the request
		// but the link died mid-response. Ambiguous — never retried.
		return nil, &netfault.FaultError{
			Op: "partial-body", Call: netfault.CallRequest, Target: g.backend(s),
			Forwarded: true, Err: err,
		}
	}
	return &proxied{status: resp.StatusCode, header: resp.Header, body: body}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// degrade answers a client whose shard cannot be reached: 503 with a
// Retry-After hint. One dark shard degrades only its own keyspace — the
// caller can retry after the hint, and every other shard keeps serving.
func (g *Gateway) degrade(w http.ResponseWriter, s int, why string) {
	w.Header().Set(ShardHeader, strconv.Itoa(s))
	w.Header().Set("Retry-After", strconv.Itoa(int((g.tuning.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, fmt.Sprintf("shard %d unavailable: %s", s, why), http.StatusServiceUnavailable)
}

// hedgedGet GETs url, racing a second attempt after HedgeAfter when
// hedging is on. Safe only because probes are idempotent GETs; /invoke
// never hedges.
func (g *Gateway) hedgedGet(ctx context.Context, url string) (*http.Response, error) {
	tctx, cancel := context.WithTimeout(ctx, g.tuning.PerTryTimeout)
	get := func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(tctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		return g.client.Do(req)
	}
	if g.tuning.HedgeAfter <= 0 {
		resp, err := get()
		if err != nil {
			cancel()
			return nil, err
		}
		// cancel when the caller closes the body
		resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 2)
	launch := func() { r, err := get(); ch <- result{r, err} }
	go launch()
	launched, got := 1, 0
	timer := time.NewTimer(g.tuning.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for got < launched {
		select {
		case <-timer.C:
			if launched == 1 {
				launched++
				g.hedges.Add(1)
				go launch()
			}
		case r := <-ch:
			got++
			if r.err == nil {
				// First answer wins. Closing the winner's body cancels tctx,
				// which aborts the loser; the drainer closes whatever the
				// loser still delivers.
				if got < launched {
					go func() {
						if late := <-ch; late.err == nil {
							late.resp.Body.Close()
						}
					}()
				}
				r.resp.Body = &cancelBody{ReadCloser: r.resp.Body, cancel: cancel}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	cancel()
	return nil, firstErr
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}
