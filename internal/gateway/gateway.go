// Package gateway is the sharded audit plane's front door: one HTTP
// endpoint fanning requests across N collectorhttp shard backends by the
// shard map's locality-key hash.
//
// The gateway is deliberately dumb — and that is a soundness feature. Its
// routing is a pure function of (shard map, request input), so an offline
// auditor holding shardmap.json and the per-shard traces recomputes every
// routing decision the gateway ever made (shard.Map.CheckRouting); a
// compromised or buggy gateway cannot move state between shards without
// the misrouted request sitting in the wrong shard's trusted trace as
// evidence. The gateway holds no audit state: each backend records its
// own trace and advice in its own epoch log, exactly as an unsharded
// collector would.
//
// Overload behavior composes per shard: a backend's 429 (admission window
// full, audit lag) passes through with its Retry-After hint intact, so
// one hot shard sheds its own arrivals while the others keep serving —
// backpressure is per shard because admission, epochs, and audit lag are.
// A backend that is down yields 502; /readyz aggregates, reporting ready
// only when every shard backend is.
package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
)

// ShardHeader names the response header carrying the shard index a request
// was routed to — clients and tests observe routing without parsing logs.
const ShardHeader = "X-Karousos-Shard"

// Config describes one gateway.
type Config struct {
	// Map is the shard topology; Validate must pass and len(Backends) must
	// equal Map.Shards.
	Map shard.Map
	// Backends are the shard collectors' base URLs, indexed by shard.
	Backends []string
	// Client performs the proxied requests. nil means a client with a 30s
	// timeout.
	Client *http.Client
	// MaxRequestBytes bounds one /invoke body read at the gateway (413
	// past it). <=0 means 1 MiB, matching the collector's default.
	MaxRequestBytes int64
}

// ShardCounters is one shard's traffic tally at the gateway.
type ShardCounters struct {
	// Routed counts requests the map assigned to this shard.
	Routed uint64 `json:"routed"`
	// Shed counts backend 429s passed through.
	Shed uint64 `json:"shed,omitempty"`
	// Errors counts proxy failures (backend unreachable, bad response).
	Errors uint64 `json:"errors,omitempty"`
}

// Gateway routes requests to shard backends.
type Gateway struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	backends []string
	counters []ShardCounters
}

// New validates the topology against the backend list.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Backends) != cfg.Map.Shards {
		return nil, fmt.Errorf("gateway: %d backends for a %d-shard map", len(cfg.Backends), cfg.Map.Shards)
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Gateway{
		cfg:      cfg,
		client:   client,
		backends: append([]string(nil), cfg.Backends...),
		counters: make([]ShardCounters, cfg.Map.Shards),
	}, nil
}

// SetBackend repoints one shard's backend URL — how a restarted collector
// (new listener, same epoch-log directory) rejoins the topology.
func (g *Gateway) SetBackend(s int, url string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s < 0 || s >= len(g.backends) {
		return fmt.Errorf("gateway: shard %d out of range", s)
	}
	g.backends[s] = url
	return nil
}

func (g *Gateway) backend(s int) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends[s]
}

// Counters returns a copy of the per-shard traffic tallies.
func (g *Gateway) Counters() []ShardCounters {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]ShardCounters(nil), g.counters...)
}

func (g *Gateway) count(s int, f func(*ShardCounters)) {
	g.mu.Lock()
	f(&g.counters[s])
	g.mu.Unlock()
}

// Handler returns the gateway's HTTP mux:
//
//	POST /invoke  routed to ShardOf(input)'s backend; response passed
//	              through with X-Karousos-Shard set
//	POST /seal    fans out to every backend; 200 with per-shard results
//	GET  /status  per-shard backend status plus gateway counters
//	GET  /healthz gateway-level detail, 200 while the process lives
//	GET  /readyz  200 only when every shard backend reports ready
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", g.handleInvoke)
	mux.HandleFunc("POST /seal", g.handleSeal)
	mux.HandleFunc("GET /status", g.handleStatus)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	return mux
}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request exceeds byte limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var body struct {
		Input json.RawMessage `json:"input"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var input value.V
	if len(body.Input) > 0 {
		if err := json.Unmarshal(body.Input, &input); err != nil {
			http.Error(w, "bad input value: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	s := g.cfg.Map.ShardOf(value.Normalize(input))
	g.count(s, func(c *ShardCounters) { c.Routed++ })

	resp, err := g.client.Post(g.backend(s)+"/invoke", "application/json", bytes.NewReader(raw))
	if err != nil {
		g.count(s, func(c *ShardCounters) { c.Errors++ })
		w.Header().Set(ShardHeader, strconv.Itoa(s))
		http.Error(w, fmt.Sprintf("shard %d backend unreachable: %v", s, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		g.count(s, func(c *ShardCounters) { c.Shed++ })
	}
	// Pass the backend's verdict through untouched — status, Retry-After,
	// body. The gateway adds only the routing evidence header.
	w.Header().Set(ShardHeader, strconv.Itoa(s))
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body) //karousos:errladder-ok best-effort proxy body; the status header is already sent
}

// sealResult is one backend's answer to a fanned-out /seal.
type sealResult struct {
	Shard  int             `json:"shard"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (g *Gateway) handleSeal(w http.ResponseWriter, r *http.Request) {
	results := make([]sealResult, g.cfg.Map.Shards)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.sealShard(i)
		}(i)
	}
	wg.Wait()
	status := http.StatusOK
	for _, res := range results {
		if res.Error != "" || res.Status >= 500 {
			// Partial failure: some shards sealed, some did not. The caller
			// gets the full per-shard picture either way.
			status = http.StatusBadGateway
		}
	}
	writeJSON(w, status, map[string]any{"shards": results})
}

func (g *Gateway) sealShard(i int) sealResult {
	resp, err := g.client.Post(g.backend(i)+"/seal", "application/json", nil)
	if err != nil {
		g.count(i, func(c *ShardCounters) { c.Errors++ })
		return sealResult{Shard: i, Error: err.Error()}
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok best-effort seal report body
	out := sealResult{Shard: i, Status: resp.StatusCode}
	if json.Valid(blob) {
		out.Body = blob
	}
	return out
}

// shardProbe is one backend's answer to a fanned-out GET.
type shardProbe struct {
	Shard   int             `json:"shard"`
	Backend string          `json:"backend"`
	Status  int             `json:"status,omitempty"`
	Body    json.RawMessage `json:"body,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// probe GETs path on every backend concurrently.
func (g *Gateway) probe(path string) []shardProbe {
	results := make([]shardProbe, g.cfg.Map.Shards)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := g.backend(i)
			results[i] = shardProbe{Shard: i, Backend: backend}
			resp, err := g.client.Get(backend + path)
			if err != nil {
				results[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok best-effort probe body
			results[i].Status = resp.StatusCode
			if json.Valid(blob) {
				results[i].Body = blob
			}
		}(i)
	}
	wg.Wait()
	return results
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   g.cfg.Map.Shards,
		"counters": g.Counters(),
		"backends": g.probe("/status"),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   g.cfg.Map.Shards,
		"counters": g.Counters(),
		"backends": g.probe("/healthz"),
	})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	probes := g.probe("/readyz")
	ready := true
	for _, p := range probes {
		if p.Error != "" || p.Status != http.StatusOK {
			ready = false
		}
	}
	status := http.StatusOK
	if !ready {
		// Ready means every shard is ready: a topology with a down or
		// draining shard cannot take its share of the keyspace, and a load
		// balancer must know before clients map onto the hole.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "backends": probes})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //karousos:errladder-ok best-effort response body; the status header is already sent
}
