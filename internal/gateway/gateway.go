// Package gateway is the sharded audit plane's front door: one HTTP
// endpoint fanning requests across N collectorhttp shard backends by the
// shard map's locality-key hash.
//
// The gateway is deliberately dumb — and that is a soundness feature. Its
// routing is a pure function of (shard map, request input), so an offline
// auditor holding shardmap.json and the per-shard traces recomputes every
// routing decision the gateway ever made (shard.Map.CheckRouting); a
// compromised or buggy gateway cannot move state between shards without
// the misrouted request sitting in the wrong shard's trusted trace as
// evidence. The gateway holds no audit state: each backend records its
// own trace and advice in its own epoch log, exactly as an unsharded
// collector would.
//
// Overload behavior composes per shard: a backend's 429 (admission window
// full, audit lag) passes through with its Retry-After hint intact, so
// one hot shard sheds its own arrivals while the others keep serving —
// backpressure is per shard because admission, epochs, and audit lag are.
//
// Partition behavior composes the same way (Tuning). Each proxied attempt
// is bounded by a per-try timeout and classified on failure by
// netfault.Classify: only a provably-unsent request (refused dial) is
// retried, under bounded exponential backoff and a gateway-wide retry
// budget — /invoke is not idempotent, so an ambiguous failure (timeout,
// reset after send) is never re-issued. Consecutive transport failures
// open that shard's circuit breaker (closed→open→half-open, /status
// exposure); while it is open, only requests routing to that shard
// fast-fail with 503 + Retry-After and every other shard keeps serving.
// A dark shard therefore degrades exactly its own keyspace, and its
// unsealed epochs grade Unauditable at merge — degradation, never a false
// accusation. /readyz aggregates, reporting ready only when every shard
// backend is; idempotent health probes may be hedged (Tuning.HedgeAfter).
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
)

// ShardHeader names the response header carrying the shard index a request
// was routed to — clients and tests observe routing without parsing logs.
const ShardHeader = "X-Karousos-Shard"

// Config describes one gateway.
type Config struct {
	// Map is the shard topology; Validate must pass and len(Backends) must
	// equal Map.Shards.
	Map shard.Map
	// Backends are the shard collectors' base URLs, indexed by shard.
	Backends []string
	// Client performs the proxied requests. nil means a client built on
	// Transport; attempts are bounded per try (Tuning.PerTryTimeout), so
	// the client itself carries no overall timeout.
	Client *http.Client
	// Transport, when Client is nil, is the proxy round-tripper — the
	// netfault plug point: Injector.Transport(nil) here puts every
	// gateway→shard hop on the fault schedule. nil means the default
	// transport.
	Transport http.RoundTripper
	// Tuning bounds retries, breakers, hedging and degradation hints;
	// the zero value means defaults.
	Tuning Tuning
	// MaxRequestBytes bounds one /invoke body read at the gateway (413
	// past it). <=0 means 1 MiB, matching the collector's default.
	MaxRequestBytes int64
}

// ShardCounters is one shard's traffic tally at the gateway.
type ShardCounters struct {
	// Routed counts requests the map assigned to this shard.
	Routed uint64 `json:"routed"`
	// Shed counts backend 429s passed through.
	Shed uint64 `json:"shed,omitempty"`
	// Errors counts proxy failures (backend unreachable, bad response).
	Errors uint64 `json:"errors,omitempty"`
	// Retries counts re-issued attempts (classified safe, budget paid).
	Retries uint64 `json:"retries,omitempty"`
	// BudgetDenied counts retries the global budget refused.
	BudgetDenied uint64 `json:"budgetDenied,omitempty"`
	// FastFails counts invokes the open breaker answered without touching
	// the backend.
	FastFails uint64 `json:"fastFails,omitempty"`
}

// Gateway routes requests to shard backends.
type Gateway struct {
	cfg      Config
	client   *http.Client
	tuning   Tuning
	breakers []*breaker
	budget   *retryBudget
	hedges   atomic.Uint64

	mu       sync.Mutex
	backends []string
	counters []ShardCounters
}

// New validates the topology against the backend list.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Backends) != cfg.Map.Shards {
		return nil, fmt.Errorf("gateway: %d backends for a %d-shard map", len(cfg.Backends), cfg.Map.Shards)
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	tuning := cfg.Tuning.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: cfg.Transport}
	}
	breakers := make([]*breaker, cfg.Map.Shards)
	for i := range breakers {
		breakers[i] = newBreaker(tuning.BreakerFailures, tuning.BreakerOpenFor)
	}
	return &Gateway{
		cfg:      cfg,
		client:   client,
		tuning:   tuning,
		breakers: breakers,
		budget:   newRetryBudget(tuning.RetryBudget, tuning.RetryBudgetRatio),
		backends: append([]string(nil), cfg.Backends...),
		counters: make([]ShardCounters, cfg.Map.Shards),
	}, nil
}

// SetBackend repoints one shard's backend URL — how a restarted collector
// (new listener, same epoch-log directory) rejoins the topology.
func (g *Gateway) SetBackend(s int, url string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s < 0 || s >= len(g.backends) {
		return fmt.Errorf("gateway: shard %d out of range", s)
	}
	g.backends[s] = url
	return nil
}

func (g *Gateway) backend(s int) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends[s]
}

// Counters returns a copy of the per-shard traffic tallies.
func (g *Gateway) Counters() []ShardCounters {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]ShardCounters(nil), g.counters...)
}

func (g *Gateway) count(s int, f func(*ShardCounters)) {
	g.mu.Lock()
	f(&g.counters[s])
	g.mu.Unlock()
}

// Handler returns the gateway's HTTP mux:
//
//	POST /invoke  routed to ShardOf(input)'s backend; response passed
//	              through with X-Karousos-Shard set
//	POST /seal    fans out to every backend; 200 with per-shard results
//	GET  /status  per-shard backend status plus gateway counters
//	GET  /healthz gateway-level detail, 200 while the process lives
//	GET  /readyz  200 only when every shard backend reports ready
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", g.handleInvoke)
	mux.HandleFunc("POST /seal", g.handleSeal)
	mux.HandleFunc("GET /status", g.handleStatus)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	return mux
}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request exceeds byte limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var body struct {
		Input json.RawMessage `json:"input"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var input value.V
	if len(body.Input) > 0 {
		if err := json.Unmarshal(body.Input, &input); err != nil {
			http.Error(w, "bad input value: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	s := g.cfg.Map.ShardOf(value.Normalize(input))
	g.count(s, func(c *ShardCounters) { c.Routed++ })

	if !g.breakers[s].allow() {
		// Open circuit: fast-fail without touching the backend. Only this
		// shard's keyspace degrades; every other shard keeps serving.
		g.count(s, func(c *ShardCounters) { c.FastFails++ })
		g.degrade(w, s, "circuit open")
		return
	}
	resp, err := g.forward(r.Context(), s, raw)
	if err != nil {
		g.count(s, func(c *ShardCounters) { c.Errors++ })
		g.degrade(w, s, err.Error())
		return
	}
	if resp.status == http.StatusTooManyRequests {
		g.count(s, func(c *ShardCounters) { c.Shed++ })
	}
	// Pass the backend's verdict through untouched — status, Retry-After,
	// body (buffered in full by forward, so a mid-body cut can never tear
	// an already-committed 200). The gateway adds only the routing
	// evidence header.
	w.Header().Set(ShardHeader, strconv.Itoa(s))
	if ra := resp.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body) //karousos:errladder-ok best-effort proxy body; the status header is already sent
}

// sealResult is one backend's answer to a fanned-out /seal.
type sealResult struct {
	Shard  int             `json:"shard"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (g *Gateway) handleSeal(w http.ResponseWriter, r *http.Request) {
	results := make([]sealResult, g.cfg.Map.Shards)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.sealShard(i)
		}(i)
	}
	wg.Wait()
	// Sealing is best-effort by design: one dark shard must not block the
	// others' evidence from sealing. The caller always gets 200 with the
	// full per-shard picture and decides what a failed lane means — the
	// audit will grade that shard's missing epochs Unauditable, never the
	// survivors'.
	sealed, failed := 0, 0
	for _, res := range results {
		if res.Error != "" || res.Status >= 500 {
			failed++
		} else {
			sealed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": results, "sealed": sealed, "failed": failed})
}

func (g *Gateway) sealShard(i int) sealResult {
	resp, err := g.client.Post(g.backend(i)+"/seal", "application/json", nil)
	if err != nil {
		g.count(i, func(c *ShardCounters) { c.Errors++ })
		return sealResult{Shard: i, Error: err.Error()}
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok best-effort seal report body
	out := sealResult{Shard: i, Status: resp.StatusCode}
	if json.Valid(blob) {
		out.Body = blob
	}
	return out
}

// shardProbe is one backend's answer to a fanned-out GET.
type shardProbe struct {
	Shard   int             `json:"shard"`
	Backend string          `json:"backend"`
	Status  int             `json:"status,omitempty"`
	Body    json.RawMessage `json:"body,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// probe GETs path on every backend concurrently — hedged when
// Tuning.HedgeAfter is set (safe: probes are idempotent). Probe outcomes
// feed the breakers without consulting them: a health sweep can both
// detect a dark shard before any invoke pays for the discovery and close
// an open circuit the moment the backend answers again.
func (g *Gateway) probe(path string) []shardProbe {
	results := make([]shardProbe, g.cfg.Map.Shards)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := g.backend(i)
			results[i] = shardProbe{Shard: i, Backend: backend}
			resp, err := g.hedgedGet(context.Background(), backend+path)
			if err != nil {
				g.breakers[i].onFailure()
				results[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			g.breakers[i].onSuccess()
			blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok best-effort probe body
			results[i].Status = resp.StatusCode
			if json.Valid(blob) {
				results[i].Body = blob
			}
		}(i)
	}
	wg.Wait()
	return results
}

// Breakers returns every shard breaker's state.
func (g *Gateway) Breakers() []BreakerStatus {
	out := make([]BreakerStatus, len(g.breakers))
	for i, b := range g.breakers {
		out[i] = b.snapshot(i)
	}
	return out
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   g.cfg.Map.Shards,
		"counters": g.Counters(),
		"breakers": g.Breakers(),
		"hedges":   g.hedges.Load(),
		"backends": g.probe("/status"),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   g.cfg.Map.Shards,
		"counters": g.Counters(),
		"backends": g.probe("/healthz"),
	})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	probes := g.probe("/readyz")
	ready := true
	for _, p := range probes {
		if p.Error != "" || p.Status != http.StatusOK {
			ready = false
		}
	}
	status := http.StatusOK
	if !ready {
		// Ready means every shard is ready: a topology with a down or
		// draining shard cannot take its share of the keyspace, and a load
		// balancer must know before clients map onto the hole.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "backends": probes})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //karousos:errladder-ok best-effort response body; the status header is already sent
}
