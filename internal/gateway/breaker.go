package gateway

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows,
// failures counted), open (fast-fail without touching the backend), and
// half-open (exactly one probe request in flight decides reopen vs close).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStatus is one shard breaker's state for /status.
type BreakerStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Failures int    `json:"failures,omitempty"`
	// Opened counts closed→open transitions over the breaker's lifetime.
	Opened uint64 `json:"opened,omitempty"`
}

// breaker is one shard's circuit breaker. Only transport-level failures
// trip it: an HTTP response of any status — including the backend's own
// 429s and 500s — proves the shard is reachable and counts as success.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	openFor   time.Duration // how long open lasts before half-open
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken
	opened   uint64
}

func newBreaker(threshold int, openFor time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if openFor <= 0 {
		openFor = time.Second
	}
	return &breaker{threshold: threshold, openFor: openFor, now: time.Now}
}

// allow reports whether a request may proceed. In half-open exactly one
// caller wins the probe slot; everyone else fast-fails until the probe's
// verdict arrives via onSuccess/onFailure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// onSuccess records a reachable backend and closes the circuit from any
// state — including open, so an out-of-band health probe can short-cut
// the open window once the backend is really back.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a transport-level failure: a failed half-open probe
// reopens immediately; the threshold'th consecutive closed-state failure
// opens the circuit.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.opened++
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.opened++
		}
	case breakerOpen:
		// Already open; an out-of-band probe failed. Restart the window so
		// a flapping backend does not half-open early.
		b.openedAt = b.now()
	}
}

func (b *breaker) snapshot(shard int) BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{Shard: shard, State: b.state.String(), Failures: b.failures, Opened: b.opened}
}

// retryBudget is the gateway-wide token bucket bounding total retry
// amplification: every proxied request earns ratio tokens (capped), every
// retry spends one. Under a full partition the budget drains and retries
// stop — the gateway degrades instead of tripling the storm.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(max, ratio float64) *retryBudget {
	if max <= 0 {
		max = 16
	}
	if ratio <= 0 {
		ratio = 0.2
	}
	// Start full so a cold gateway can retry its very first request.
	return &retryBudget{tokens: max, max: max, ratio: ratio}
}

func (b *retryBudget) earn() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
