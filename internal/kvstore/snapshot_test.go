package kvstore

import "testing"

func TestSISnapshotReads(t *testing.T) {
	s := New(SnapshotIsolation)
	w1 := s.Begin()
	w1.Put("k", "v1", ref("r1", "t1", 2))
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}

	reader := s.Begin() // snapshot: sees v1
	w2 := s.Begin()
	w2.Put("k", "v2", ref("r2", "t2", 2))
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}

	v, ref1, found, err := reader.Get("k")
	if err != nil || !found {
		t.Fatalf("snapshot read: %v", err)
	}
	if v != "v1" || ref1 != ref("r1", "t1", 2) {
		t.Errorf("snapshot read observed %v from %v, want v1", v, ref1)
	}
	// A fresh transaction sees v2.
	late := s.Begin()
	v2, _, _, _ := late.Get("k")
	if v2 != "v2" {
		t.Errorf("fresh read = %v, want v2", v2)
	}
}

func TestSIRepeatableReads(t *testing.T) {
	s := New(SnapshotIsolation)
	seed := s.Begin()
	seed.Put("k", "v1", ref("r0", "t0", 2))
	seed.Commit()

	reader := s.Begin()
	v1, _, _, _ := reader.Get("k")
	w := s.Begin()
	w.Put("k", "v2", ref("r1", "t1", 2))
	w.Commit()
	v2, _, _, _ := reader.Get("k")
	if v1 != v2 {
		t.Errorf("non-repeatable read under SI: %v then %v", v1, v2)
	}
}

// TestSIFirstCommitterWins: the classic lost-update scenario is prevented —
// two transactions both read and both write the same key; the second
// committer aborts.
func TestSIFirstCommitterWins(t *testing.T) {
	s := New(SnapshotIsolation)
	seed := s.Begin()
	seed.Put("counter", float64(0), ref("r0", "t0", 2))
	seed.Commit()

	a := s.Begin()
	b := s.Begin()
	av, _, _, _ := a.Get("counter")
	bv, _, _, _ := b.Get("counter")
	a.Put("counter", av.(float64)+1, ref("ra", "ta", 3))
	b.Put("counter", bv.(float64)+1, ref("rb", "tb", 3))
	if err := a.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	if err := b.Commit(); err != ErrConflict {
		t.Fatalf("second committer got %v, want ErrConflict (lost update)", err)
	}
	final := s.Begin()
	v, _, _, _ := final.Get("counter")
	if v != float64(1) {
		t.Errorf("counter = %v, want 1", v)
	}
}

// TestSIWriteSkewAllowed: write skew commits under SI because the two
// transactions write different keys.
func TestSIWriteSkewAllowed(t *testing.T) {
	s := New(SnapshotIsolation)
	seed := s.Begin()
	seed.Put("a", true, ref("r0", "t0", 2))
	seed.Put("b", true, ref("r0", "t0", 3))
	seed.Commit()

	t1 := s.Begin()
	t2 := s.Begin()
	if v, _, _, _ := t1.Get("b"); v != true {
		t.Fatal("t1 read")
	}
	if v, _, _, _ := t2.Get("a"); v != true {
		t.Fatal("t2 read")
	}
	t1.Put("a", false, ref("r1", "t1", 3))
	t2.Put("b", false, ref("r2", "t2", 3))
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit (write skew must be allowed under SI): %v", err)
	}
}

func TestSINoWriteLocks(t *testing.T) {
	// Under SI, concurrent writers to the same key proceed until commit.
	s := New(SnapshotIsolation)
	a := s.Begin()
	b := s.Begin()
	if err := a.Put("k", "a", ref("ra", "ta", 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", "b", ref("rb", "tb", 2)); err != nil {
		t.Fatalf("SI writes must not block: %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != ErrConflict {
		t.Errorf("second committer got %v", err)
	}
}

func TestSITxEventsOrder(t *testing.T) {
	s := New(SnapshotIsolation)
	a := s.BeginTx("r1", "t1")
	a.Put("k", "v", ref("r1", "t1", 2))
	b := s.BeginTx("r2", "t2")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	evs := s.TxEvents()
	want := []TxEvent{
		{TxBegin, "r1", "t1"},
		{TxBegin, "r2", "t2"},
		{TxCommitEvent, "r1", "t1"},
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %v", evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestSIScanReadsSnapshot(t *testing.T) {
	s := New(SnapshotIsolation)
	seed := s.Begin()
	seed.Put("p:1", "v1", ref("r0", "t0", 2))
	seed.Commit()
	reader := s.Begin()
	w := s.Begin()
	w.Put("p:2", "v2", ref("r1", "t1", 2))
	w.Commit()
	keys, _, _, err := reader.Scan("p:")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "p:1" {
		t.Errorf("snapshot scan saw %v, want only p:1", keys)
	}
}

func TestNonSILevelsRecordNoTxEvents(t *testing.T) {
	s := New(Serializable)
	a := s.BeginTx("r1", "t1")
	a.Put("k", "v", ref("r1", "t1", 2))
	a.Commit()
	if len(s.TxEvents()) != 0 {
		t.Error("non-SI store recorded tx events")
	}
}
