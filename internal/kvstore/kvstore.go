// Package kvstore is the transactional key-value substrate standing in for
// the paper's MySQL deployment (§4.4, §5). The paper restricts MySQL to
// single-row SELECT/UPDATE by primary key — i.e., exactly a transactional KV
// store with a PUT/GET interface — and repurposes the MySQL binlog as a
// global order of committed writes. This package provides the same three
// capabilities natively:
//
//   - transactions (tx_start / PUT / GET / tx_commit / tx_abort) under one of
//     three isolation levels: serializable (strict two-phase locking),
//     read committed (write locks only), and read uncommitted (reads may
//     observe pending writes);
//   - per-row last-writer tracking, which is how the honest server captures
//     the dictating PUT of every GET (§5);
//   - a binlog: the commit-ordered sequence of each committed transaction's
//     final write per key, which becomes the advice's write order.
//
// Conflicts use immediate abort ("no-wait" locking): an operation that would
// block instead aborts its own transaction and returns ErrConflict. This is
// deadlock-free and reproduces the retry-error behavior the paper's stack
// dump application relies on (§6).
//
// The store is used only by server-side runtimes; the verifier never touches
// a store — it replays external state purely from (untrusted) transaction
// logs, which is the whole point of the audit.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// Isolation selects the store's isolation level (§4.4's model; snapshot
// isolation is future work in the paper and here).
type Isolation uint8

const (
	// Serializable is strict 2PL: exclusive write locks, shared read locks,
	// all held to commit.
	Serializable Isolation = iota
	// ReadCommitted holds write locks to commit but takes no read locks;
	// reads observe the latest committed version.
	ReadCommitted
	// ReadUncommitted holds write locks to commit; reads observe the latest
	// write, committed or not (dirty reads).
	ReadUncommitted
	// SnapshotIsolation is MVCC with first-committer-wins: reads observe the
	// latest version committed before the transaction began; a commit
	// aborts if any written key was committed by another transaction in the
	// meantime. This is an extension past the paper's implementation (its
	// §1 lists snapshot isolation as future work); the matching audit-side
	// test is adya.SnapshotIsolation.
	SnapshotIsolation
)

func (i Isolation) String() string {
	switch i {
	case Serializable:
		return "serializable"
	case ReadCommitted:
		return "read committed"
	case ReadUncommitted:
		return "read uncommitted"
	case SnapshotIsolation:
		return "snapshot isolation"
	}
	return fmt.Sprintf("Isolation(%d)", uint8(i))
}

// ErrConflict is returned when an operation would block on a lock held by
// another live transaction; the issuing transaction has been aborted.
var ErrConflict = errors.New("kvstore: conflict, transaction aborted")

// ErrTxDone is returned when operating on a committed or aborted transaction.
var ErrTxDone = errors.New("kvstore: transaction is not active")

// WriteRef locates a PUT inside the advice's transaction logs: the Index-th
// operation (1-based) of transaction TID of request RID. The store treats it
// as opaque provenance; it is how rows remember their last writer.
type WriteRef struct {
	RID   core.RID
	TID   core.TxID
	Index int
}

// IsZero reports whether the reference is unset (row never written).
func (w WriteRef) IsZero() bool { return w == WriteRef{} }

// version is one committed value of a row; rows keep their full version
// chains so snapshot reads can observe the past.
type version struct {
	val      value.V
	writer   WriteRef
	commitTS uint64
}

type row struct {
	// versions is the committed history, oldest first; the last entry is
	// the latest committed value. Non-snapshot levels only consult the
	// last entry.
	versions []version

	writeLock *Txn // holder of the exclusive lock, nil if free
	readLocks map[*Txn]struct{}
}

func (r *row) latest() (version, bool) {
	if len(r.versions) == 0 {
		return version{}, false
	}
	return r.versions[len(r.versions)-1], true
}

// asOf returns the newest version with commitTS ≤ ts.
func (r *row) asOf(ts uint64) (version, bool) {
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].commitTS <= ts {
			return r.versions[i], true
		}
	}
	return version{}, false
}

// Store is a transactional KV store. It is safe for use from a single
// dispatch-loop goroutine; a mutex guards against accidental cross-goroutine
// use in examples.
// TxEventKind distinguishes begin and commit events in the store's
// transaction-order log.
type TxEventKind uint8

const (
	// TxBegin marks a transaction's start.
	TxBegin TxEventKind = iota
	// TxCommitEvent marks a successful commit.
	TxCommitEvent
)

// TxEvent is one entry of the transaction-order log: under snapshot
// isolation the alleged begin/commit order is part of the advice, because
// Adya's G-SI phenomena are defined over it.
type TxEvent struct {
	Kind TxEventKind
	RID  core.RID
	TID  core.TxID
}

type Store struct {
	mu     sync.Mutex
	level  Isolation
	rows   map[string]*row
	binlog []WriteRef
	// ts is the logical commit clock for snapshot isolation.
	ts uint64
	// txEvents is the begin/commit order, recorded under snapshot isolation.
	txEvents []TxEvent
	// prefixHolders tracks transactions that hold predicate locks.
	prefixHolders map[*Txn]struct{}

	commits, aborts, conflicts int
}

// New returns an empty store at the given isolation level.
func New(level Isolation) *Store {
	return &Store{level: level, rows: make(map[string]*row), prefixHolders: make(map[*Txn]struct{})}
}

// Level returns the store's isolation level.
func (s *Store) Level() Isolation { return s.level }

// Txn is one open transaction.
type Txn struct {
	st   *Store
	done bool

	// owner identifies the transaction in the advice (set by BeginTx).
	ownerRID core.RID
	ownerTID core.TxID
	// startTS is the snapshot timestamp under snapshot isolation.
	startTS uint64

	pending map[string]pendingWrite
	// lastWriteOrder records keys in order of their most recent PUT, so the
	// binlog appends a committed transaction's final writes in the order the
	// program issued them.
	lastWriteOrder []string
	readLocked     map[string]struct{}
	writeLocked    map[string]struct{}
	// prefixLocks are predicate locks taken by Scan under Serializable;
	// writes by other transactions to matching keys conflict (no phantoms).
	prefixLocks []string
}

type pendingWrite struct {
	val value.V
	ref WriteRef
}

// Begin opens an anonymous transaction (tests and tools); servers use
// BeginTx so the transaction-order log can identify it.
func (s *Store) Begin() *Txn { return s.BeginTx("", "") }

// BeginTx opens a transaction owned by (rid, tid). Under snapshot isolation
// the transaction's snapshot is fixed here and a begin event enters the
// transaction-order log.
func (s *Store) BeginTx(rid core.RID, tid core.TxID) *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &Txn{
		st:          s,
		ownerRID:    rid,
		ownerTID:    tid,
		startTS:     s.ts,
		pending:     make(map[string]pendingWrite),
		readLocked:  make(map[string]struct{}),
		writeLocked: make(map[string]struct{}),
	}
	if s.level == SnapshotIsolation {
		s.txEvents = append(s.txEvents, TxEvent{Kind: TxBegin, RID: rid, TID: tid})
	}
	return t
}

func (s *Store) getRow(key string) *row {
	r, ok := s.rows[key]
	if !ok {
		r = &row{readLocks: make(map[*Txn]struct{})}
		s.rows[key] = r
	}
	return r
}

// Get reads the row at key. It returns the observed value, the WriteRef of
// the write it observed (the dictating PUT; zero if the row was never
// written), and found=false when the row does not exist at the observed
// version. Under Serializable it takes a read lock and may return
// ErrConflict, aborting t.
func (t *Txn) Get(key string) (v value.V, ref WriteRef, found bool, err error) {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if t.done {
		return nil, WriteRef{}, false, ErrTxDone
	}
	// Read-your-writes comes first at every isolation level.
	if pw, ok := t.pending[key]; ok {
		return value.Clone(pw.val), pw.ref, true, nil
	}
	r := t.st.getRow(key)
	switch t.st.level {
	case Serializable:
		if r.writeLock != nil && r.writeLock != t {
			t.abortLocked()
			return nil, WriteRef{}, false, ErrConflict
		}
		r.readLocks[t] = struct{}{}
		t.readLocked[key] = struct{}{}
	case ReadUncommitted:
		if r.writeLock != nil && r.writeLock != t {
			// Dirty read of the lock holder's pending write.
			pw := r.writeLock.pending[key]
			return value.Clone(pw.val), pw.ref, true, nil
		}
	case ReadCommitted:
		// Latest committed version, no locks.
	case SnapshotIsolation:
		ver, ok := r.asOf(t.startTS)
		if !ok {
			return nil, WriteRef{}, false, nil
		}
		return value.Clone(ver.val), ver.writer, true, nil
	}
	ver, ok := r.latest()
	if !ok {
		return nil, WriteRef{}, false, nil
	}
	return value.Clone(ver.val), ver.writer, true, nil
}

// Put writes val to the row at key, recording ref as the write's provenance.
// It takes the exclusive write lock and may return ErrConflict, aborting t.
func (t *Txn) Put(key string, val value.V, ref WriteRef) error {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	r := t.st.getRow(key)
	if t.st.level != SnapshotIsolation {
		if r.writeLock != nil && r.writeLock != t {
			t.abortLocked()
			return ErrConflict
		}
		if t.st.level == Serializable {
			for reader := range r.readLocks {
				if reader != t {
					t.abortLocked()
					return ErrConflict
				}
			}
			if t.st.prefixConflicts(t, key) {
				t.abortLocked()
				return ErrConflict
			}
		}
		r.writeLock = t
		t.writeLocked[key] = struct{}{}
	}
	if _, rewrote := t.pending[key]; rewrote {
		// Move key to the end of the last-write order.
		for i, k := range t.lastWriteOrder {
			if k == key {
				t.lastWriteOrder = append(t.lastWriteOrder[:i], t.lastWriteOrder[i+1:]...)
				break
			}
		}
	}
	t.pending[key] = pendingWrite{val: value.Clone(value.Normalize(val)), ref: ref}
	t.lastWriteOrder = append(t.lastWriteOrder, key)
	return nil
}

// Commit installs the transaction's writes, appends its final write per key
// to the binlog in program order, and releases all locks. Under snapshot
// isolation the commit first validates first-committer-wins: if another
// transaction committed any written key since this transaction began, the
// commit aborts with ErrConflict.
func (t *Txn) Commit() error {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	if t.st.level == SnapshotIsolation {
		for key := range t.pending {
			if ver, ok := t.st.getRow(key).latest(); ok && ver.commitTS > t.startTS {
				t.abortLocked()
				return ErrConflict
			}
		}
	}
	t.st.ts++
	commitTS := t.st.ts
	for _, key := range t.lastWriteOrder {
		pw := t.pending[key]
		r := t.st.getRow(key)
		r.versions = append(r.versions, version{val: pw.val, writer: pw.ref, commitTS: commitTS})
		t.st.binlog = append(t.st.binlog, pw.ref)
	}
	if t.st.level == SnapshotIsolation {
		t.st.txEvents = append(t.st.txEvents, TxEvent{Kind: TxCommitEvent, RID: t.ownerRID, TID: t.ownerTID})
	}
	t.release()
	t.done = true
	t.st.commits++
	return nil
}

// Abort rolls the transaction back and releases its locks. Aborting a done
// transaction is a no-op.
func (t *Txn) Abort() {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if t.done {
		return
	}
	t.abortLocked()
}

func (t *Txn) abortLocked() {
	t.release()
	t.done = true
	t.st.aborts++
	t.st.conflicts++ // all aborts via abortLocked stem from conflicts or explicit Abort
}

func (t *Txn) release() {
	delete(t.st.prefixHolders, t)
	for key := range t.readLocked {
		delete(t.st.rows[key].readLocks, t)
	}
	for key := range t.writeLocked {
		if r := t.st.rows[key]; r.writeLock == t {
			r.writeLock = nil
		}
	}
}

// Active reports whether the transaction can still issue operations.
func (t *Txn) Active() bool {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	return !t.done
}

// Binlog returns the commit-ordered global write order accumulated so far
// (the advice's writeOrder source, §4.4/§5). The returned slice is a copy.
func (s *Store) Binlog() []WriteRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]WriteRef(nil), s.binlog...)
}

// TxEvents returns the begin/commit order recorded under snapshot isolation
// (empty at other levels). The returned slice is a copy.
func (s *Store) TxEvents() []TxEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TxEvent(nil), s.txEvents...)
}

// Stats returns commit/abort counters, used by tests and the stacks app's
// retry accounting.
func (s *Store) Stats() (commits, aborts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.aborts
}

// SnapshotCommitted returns the committed state as a map, for tests that
// compare end states across executions.
func (s *Store) SnapshotCommitted() map[string]value.V {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]value.V, len(s.rows))
	for k, r := range s.rows {
		if ver, ok := r.latest(); ok {
			out[k] = value.Clone(ver.val)
		}
	}
	return out
}

// Range queries (the paper's §1 names them as future work; this
// implementation adds them with genuine predicate locking at the store).
//
// Scan returns the committed rows whose keys start with prefix, in key
// order. Under Serializable the transaction takes a predicate (prefix) lock:
// a later Put by another transaction whose key matches the prefix conflicts
// and aborts the writer, so the store itself admits no phantoms. Under the
// weaker levels Scan reads the latest committed versions without locking.
func (t *Txn) Scan(prefix string) (keys []string, vals []value.V, refs []WriteRef, err error) {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if t.done {
		return nil, nil, nil, ErrTxDone
	}
	if t.st.level == Serializable {
		// A pending write by another transaction that matches the prefix is
		// a read-write conflict right now.
		for key, r := range t.st.rows {
			if strings.HasPrefix(key, prefix) && r.writeLock != nil && r.writeLock != t {
				t.abortLocked()
				return nil, nil, nil, ErrConflict
			}
		}
		t.prefixLocks = append(t.prefixLocks, prefix)
		t.st.prefixHolders[t] = struct{}{}
	}
	visible := func(r *row) (version, bool) {
		if t.st.level == SnapshotIsolation {
			return r.asOf(t.startTS)
		}
		return r.latest()
	}
	var ks []string
	for key, r := range t.st.rows {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		_, pending := t.pending[key]
		if _, ok := visible(r); pending || ok {
			ks = append(ks, key)
		}
	}
	sort.Strings(ks)
	for _, key := range ks {
		if pw, ok := t.pending[key]; ok { // read-your-writes
			keys = append(keys, key)
			vals = append(vals, value.Clone(pw.val))
			refs = append(refs, pw.ref)
			continue
		}
		ver, _ := visible(t.st.rows[key])
		keys = append(keys, key)
		vals = append(vals, value.Clone(ver.val))
		refs = append(refs, ver.writer)
	}
	return keys, vals, refs, nil
}

// prefixConflicts reports whether key matches a prefix lock held by a live
// transaction other than t.
func (s *Store) prefixConflicts(t *Txn, key string) bool {
	for other := range s.prefixHolders {
		if other == t || other.done {
			continue
		}
		for _, p := range other.prefixLocks {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
	}
	return false
}
