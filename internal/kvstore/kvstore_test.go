package kvstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

func ref(rid string, tid string, idx int) WriteRef {
	return WriteRef{RID: core.RID(rid), TID: core.TxID(tid), Index: idx}
}

func TestCommitVisibility(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	if err := t1.Put("k", "v1", ref("r1", "t1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := s.Begin()
	v, w, found, err := t2.Get("k")
	if err != nil || !found {
		t.Fatalf("get after commit: %v found=%v", err, found)
	}
	if v != "v1" || w != ref("r1", "t1", 2) {
		t.Errorf("got %v from %v", v, w)
	}
}

func TestAbortDiscards(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Put("k", "v1", ref("r1", "t1", 2))
	t1.Abort()
	t2 := s.Begin()
	_, _, found, err := t2.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("aborted write visible")
	}
	if len(s.Binlog()) != 0 {
		t.Error("aborted write in binlog")
	}
}

func TestReadYourWrites(t *testing.T) {
	for _, lvl := range []Isolation{Serializable, ReadCommitted, ReadUncommitted} {
		s := New(lvl)
		t1 := s.Begin()
		t1.Put("k", "mine", ref("r1", "t1", 2))
		v, w, found, err := t1.Get("k")
		if err != nil || !found || v != "mine" || w != ref("r1", "t1", 2) {
			t.Errorf("%v: read-your-writes failed: %v %v %v %v", lvl, v, w, found, err)
		}
	}
}

func TestGetAbsentRow(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	v, w, found, err := t1.Get("missing")
	if err != nil || found || v != nil || !w.IsZero() {
		t.Errorf("absent row: %v %v %v %v", v, w, found, err)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	for _, lvl := range []Isolation{Serializable, ReadCommitted, ReadUncommitted} {
		s := New(lvl)
		t1 := s.Begin()
		t2 := s.Begin()
		if err := t1.Put("k", "a", ref("r1", "t1", 2)); err != nil {
			t.Fatal(err)
		}
		if err := t2.Put("k", "b", ref("r2", "t2", 2)); err != ErrConflict {
			t.Errorf("%v: second writer got %v, want ErrConflict", lvl, err)
		}
		if t2.Active() {
			t.Errorf("%v: conflicting transaction still active", lvl)
		}
		// t1 can still commit.
		if err := t1.Commit(); err != nil {
			t.Errorf("%v: winner commit failed: %v", lvl, err)
		}
	}
}

func TestSerializableReadWriteConflict(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t2 := s.Begin()
	if _, _, _, err := t1.Get("k"); err != nil {
		t.Fatal(err)
	}
	// t2 writing a key t1 read must conflict under strict 2PL.
	if err := t2.Put("k", "x", ref("r2", "t2", 2)); err != ErrConflict {
		t.Errorf("write over read lock got %v, want ErrConflict", err)
	}
}

func TestSerializableReadOfWriteLockedConflicts(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Put("k", "x", ref("r1", "t1", 2))
	t2 := s.Begin()
	if _, _, _, err := t2.Get("k"); err != ErrConflict {
		t.Errorf("read of write-locked row got %v, want ErrConflict", err)
	}
}

func TestReadCommittedIgnoresOthersPending(t *testing.T) {
	s := New(ReadCommitted)
	seed := s.Begin()
	seed.Put("k", "old", ref("r0", "t0", 2))
	seed.Commit()
	t1 := s.Begin()
	t1.Put("k", "new", ref("r1", "t1", 2))
	t2 := s.Begin()
	v, w, found, err := t2.Get("k")
	if err != nil || !found {
		t.Fatalf("read committed get: %v", err)
	}
	if v != "old" || w != ref("r0", "t0", 2) {
		t.Errorf("read committed observed pending write: %v from %v", v, w)
	}
}

func TestReadUncommittedSeesDirty(t *testing.T) {
	s := New(ReadUncommitted)
	seed := s.Begin()
	seed.Put("k", "old", ref("r0", "t0", 2))
	seed.Commit()
	t1 := s.Begin()
	t1.Put("k", "dirty", ref("r1", "t1", 2))
	t2 := s.Begin()
	v, w, found, err := t2.Get("k")
	if err != nil || !found {
		t.Fatalf("dirty read failed: %v", err)
	}
	if v != "dirty" || w != ref("r1", "t1", 2) {
		t.Errorf("read uncommitted should see pending write, got %v from %v", v, w)
	}
}

func TestUpgradeOwnReadLock(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	if _, _, _, err := t1.Get("k"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("k", "v", ref("r1", "t1", 3)); err != nil {
		t.Errorf("upgrading own read lock should succeed: %v", err)
	}
}

func TestLocksReleasedOnCommit(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Put("k", "v", ref("r1", "t1", 2))
	t1.Commit()
	t2 := s.Begin()
	if err := t2.Put("k", "w", ref("r2", "t2", 2)); err != nil {
		t.Errorf("lock not released by commit: %v", err)
	}
}

func TestLocksReleasedOnAbort(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Put("k", "v", ref("r1", "t1", 2))
	t1.Abort()
	t2 := s.Begin()
	if err := t2.Put("k", "w", ref("r2", "t2", 2)); err != nil {
		t.Errorf("lock not released by abort: %v", err)
	}
}

func TestOpsOnDoneTransaction(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Commit()
	if _, _, _, err := t1.Get("k"); err != ErrTxDone {
		t.Errorf("Get on done tx: %v", err)
	}
	if err := t1.Put("k", "v", WriteRef{}); err != ErrTxDone {
		t.Errorf("Put on done tx: %v", err)
	}
	if err := t1.Commit(); err != ErrTxDone {
		t.Errorf("Commit on done tx: %v", err)
	}
	t1.Abort() // must be a no-op, not a panic
}

func TestBinlogOrderAndLastModification(t *testing.T) {
	s := New(Serializable)
	t1 := s.Begin()
	t1.Put("a", "a1", ref("r1", "t1", 2))
	t1.Put("b", "b1", ref("r1", "t1", 3))
	t1.Put("a", "a2", ref("r1", "t1", 4)) // rewrites a: only last modification in binlog
	t1.Commit()
	t2 := s.Begin()
	t2.Put("b", "b2", ref("r2", "t2", 2))
	t2.Commit()
	bl := s.Binlog()
	want := []WriteRef{ref("r1", "t1", 3), ref("r1", "t1", 4), ref("r2", "t2", 2)}
	if len(bl) != len(want) {
		t.Fatalf("binlog = %v", bl)
	}
	for i := range want {
		if bl[i] != want[i] {
			t.Errorf("binlog[%d] = %v, want %v", i, bl[i], want[i])
		}
	}
}

func TestStats(t *testing.T) {
	s := New(Serializable)
	a := s.Begin()
	a.Put("k", "v", WriteRef{})
	a.Commit()
	b := s.Begin()
	b.Put("k", "w", WriteRef{})
	b.Abort()
	commits, aborts := s.Stats()
	if commits != 1 || aborts != 1 {
		t.Errorf("stats = %d commits, %d aborts", commits, aborts)
	}
}

func TestSnapshotCommitted(t *testing.T) {
	s := New(Serializable)
	a := s.Begin()
	a.Put("k", value.Map("n", 1), WriteRef{})
	a.Commit()
	b := s.Begin()
	b.Put("j", "pending", WriteRef{})
	snap := s.SnapshotCommitted()
	if len(snap) != 1 || !value.Equal(snap["k"], value.Map("n", 1)) {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestValuesClonedOnGet(t *testing.T) {
	s := New(Serializable)
	a := s.Begin()
	a.Put("k", value.Map("n", 1), WriteRef{})
	a.Commit()
	b := s.Begin()
	v, _, _, _ := b.Get("k")
	v.(map[string]value.V)["n"] = float64(99)
	c := s.Begin()
	// c conflicts with b's read lock? No: reads share. Read again.
	w, _, _, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if w.(map[string]value.V)["n"] != float64(1) {
		t.Error("mutating a Get result corrupted the store")
	}
}

// TestQuickSerializableHistoriesPassAdya runs random single-threaded
// transaction workloads under the serializable store, reconstructs the Adya
// history from the store's outputs, and checks the serializability test
// passes — the store and the checker must agree about what serializable
// means.
func TestQuickSerializableHistoriesPassAdya(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Serializable)
		keys := []string{"a", "b", "c"}
		h := &adya.History{WriteOrderPerKey: map[string][]adya.Write{}}
		var open []*Txn
		meta := map[*Txn]adya.TxKey{}
		lastMod := map[*Txn]map[string]int{}
		opIdx := map[*Txn]int{}
		txn := 0
		for step := 0; step < 60; step++ {
			if len(open) == 0 || r.Intn(4) == 0 {
				tx := s.Begin()
				txn++
				open = append(open, tx)
				meta[tx] = adya.TxKey{RID: "r", TID: string(rune('A' + txn))}
				lastMod[tx] = map[string]int{}
				opIdx[tx] = 1
				continue
			}
			tx := open[r.Intn(len(open))]
			if !tx.Active() {
				continue
			}
			switch r.Intn(5) {
			case 0: // commit
				if err := tx.Commit(); err == nil {
					h.Committed = append(h.Committed, meta[tx])
				}
			case 1: // abort
				tx.Abort()
			case 2, 3: // put
				k := keys[r.Intn(len(keys))]
				opIdx[tx]++
				if err := tx.Put(k, float64(step), WriteRef{RID: core.RID(meta[tx].RID), TID: core.TxID(meta[tx].TID), Index: opIdx[tx]}); err == nil {
					lastMod[tx][k] = opIdx[tx]
				}
			default: // get
				k := keys[r.Intn(len(keys))]
				opIdx[tx]++
				v, w, found, err := tx.Get(k)
				_ = v
				if err == nil && found && !w.IsZero() {
					h.Reads = append(h.Reads, adya.Read{
						From:  adya.Write{Tx: adya.TxKey{RID: string(w.RID), TID: string(w.TID)}, Pos: w.Index},
						By:    meta[tx],
						ByPos: opIdx[tx],
					})
				}
			}
		}
		for _, tx := range open {
			tx.Abort()
		}
		for _, ref := range s.Binlog() {
			w := adya.Write{Tx: adya.TxKey{RID: string(ref.RID), TID: string(ref.TID)}, Pos: ref.Index}
			// Reconstruct per-key order from binlog via the last-mod map.
			for txp, mods := range lastMod {
				if meta[txp].TID == string(ref.TID) {
					for k, idx := range mods {
						if idx == ref.Index {
							h.WriteOrderPerKey[k] = append(h.WriteOrderPerKey[k], w)
						}
					}
				}
			}
		}
		return adya.Check(h, adya.Serializable) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
