package kvstore

import (
	"testing"

	"karousos.dev/karousos/internal/value"
)

func seedRows(t *testing.T, s *Store, kv map[string]string) {
	t.Helper()
	tx := s.Begin()
	i := 0
	for k, v := range kv {
		i++
		if err := tx.Put(k, v, ref("seed", "t0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestScanReturnsPrefixInOrder(t *testing.T) {
	s := New(Serializable)
	seedRows(t, s, map[string]string{
		"user:alice": "a", "user:bob": "b", "user:carol": "c", "item:1": "x",
	})
	tx := s.Begin()
	keys, vals, refs, err := tx.Scan("user:")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "user:alice" || keys[1] != "user:bob" || keys[2] != "user:carol" {
		t.Errorf("keys = %v", keys)
	}
	if vals[1] != "b" {
		t.Errorf("vals = %v", vals)
	}
	for i, r := range refs {
		if r.IsZero() {
			t.Errorf("refs[%d] is zero; scans must report dictating writes", i)
		}
	}
}

func TestScanEmptyPrefix(t *testing.T) {
	s := New(Serializable)
	tx := s.Begin()
	keys, _, _, err := tx.Scan("none:")
	if err != nil || len(keys) != 0 {
		t.Errorf("empty scan: %v %v", keys, err)
	}
}

func TestScanSeesOwnPendingWrites(t *testing.T) {
	s := New(Serializable)
	seedRows(t, s, map[string]string{"k:1": "old"})
	tx := s.Begin()
	if err := tx.Put("k:2", "mine", ref("r", "t", 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("k:1", "updated", ref("r", "t", 3)); err != nil {
		t.Fatal(err)
	}
	keys, vals, _, err := tx.Scan("k:")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || vals[0] != "updated" || vals[1] != "mine" {
		t.Errorf("scan = %v / %v", keys, vals)
	}
}

func TestScanDoesNotSeeOthersPending(t *testing.T) {
	s := New(ReadCommitted)
	seedRows(t, s, map[string]string{"k:1": "old"})
	writer := s.Begin()
	if err := writer.Put("k:2", "pending", ref("r", "t", 2)); err != nil {
		t.Fatal(err)
	}
	reader := s.Begin()
	keys, _, _, err := reader.Scan("k:")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("read-committed scan saw pending rows: %v", keys)
	}
}

// TestScanPredicateLockBlocksPhantoms: under Serializable, a write matching
// an active scan's prefix by another transaction must conflict — the store
// admits no phantoms.
func TestScanPredicateLockBlocksPhantoms(t *testing.T) {
	s := New(Serializable)
	seedRows(t, s, map[string]string{"k:1": "v"})
	scanner := s.Begin()
	if _, _, _, err := scanner.Scan("k:"); err != nil {
		t.Fatal(err)
	}
	writer := s.Begin()
	if err := writer.Put("k:2", "phantom", ref("r", "t", 2)); err != ErrConflict {
		t.Errorf("phantom insert got %v, want ErrConflict", err)
	}
	// Outside the prefix, writes proceed.
	writer2 := s.Begin()
	if err := writer2.Put("other:1", "fine", ref("r2", "t2", 2)); err != nil {
		t.Errorf("unrelated write blocked: %v", err)
	}
	// After the scanner finishes, the prefix is writable again.
	scanner.Commit()
	writer3 := s.Begin()
	if err := writer3.Put("k:2", "now-ok", ref("r3", "t3", 2)); err != nil {
		t.Errorf("write after scanner committed blocked: %v", err)
	}
}

// TestScanOverWriteLockedRowConflicts: scanning a prefix containing another
// transaction's pending write is a read of a write-locked row.
func TestScanOverWriteLockedRowConflicts(t *testing.T) {
	s := New(Serializable)
	seedRows(t, s, map[string]string{"k:1": "v"})
	writer := s.Begin()
	if err := writer.Put("k:1", "pending", ref("r", "t", 2)); err != nil {
		t.Fatal(err)
	}
	scanner := s.Begin()
	if _, _, _, err := scanner.Scan("k:"); err != ErrConflict {
		t.Errorf("scan over locked row got %v, want ErrConflict", err)
	}
}

func TestScanOnDoneTx(t *testing.T) {
	s := New(Serializable)
	tx := s.Begin()
	tx.Commit()
	if _, _, _, err := tx.Scan("k:"); err != ErrTxDone {
		t.Errorf("scan on done tx: %v", err)
	}
}

func TestScanValuesCloned(t *testing.T) {
	s := New(Serializable)
	tx0 := s.Begin()
	tx0.Put("k:1", value.Map("n", 1), ref("r", "t", 2))
	tx0.Commit()
	tx := s.Begin()
	_, vals, _, err := tx.Scan("k:")
	if err != nil {
		t.Fatal(err)
	}
	vals[0].(map[string]value.V)["n"] = float64(99)
	tx2 := s.Begin()
	_, vals2, _, _ := tx2.Scan("k:")
	if vals2[0].(map[string]value.V)["n"] != float64(1) {
		t.Error("mutating a Scan result corrupted the store")
	}
}
