package core

import (
	"errors"
	"fmt"
)

// RejectCode is the machine-readable classification of an audit rejection.
// The advice is untrusted (§2.1), so the verifier must turn *every* hostile
// input into a verdict rather than a crash; the code tells operators — and
// the CLI's exit-status logic — which layer of the audit fired.
type RejectCode string

const (
	// RejectMalformedAdvice: the advice fails structural validation before
	// or during Preprocess — missing sections, out-of-range references,
	// duplicate entries, impossible log shapes, or a mode mismatch.
	RejectMalformedAdvice RejectCode = "MalformedAdvice"
	// RejectLogMismatch: grouped re-execution diverged from the logs — an
	// operation the advice never logged, a logged operation replay never
	// produced, or replayed values disagreeing with logged ones (Figure 19).
	RejectLogMismatch RejectCode = "LogMismatch"
	// RejectGraphCycle: the execution graph G is cyclic — no legal schedule
	// explains the alleged execution (§4.3, Figure 5's family).
	RejectGraphCycle RejectCode = "GraphCycle"
	// RejectIsolationViolation: the alleged transaction history violates the
	// store's isolation level (Figure 17, Adya's phenomena) or its read-from
	// / write-order consistency rules (§4.4).
	RejectIsolationViolation RejectCode = "IsolationViolation"
	// RejectOutputMismatch: re-execution produced a response that differs
	// from the trusted trace — the observable-behavior check itself.
	RejectOutputMismatch RejectCode = "OutputMismatch"
	// RejectResourceLimit: the audit exceeded a configured resource bound
	// (verifier.Limits) — attacker-inflated opcounts, graph blow-up, or a
	// wall-clock deadline. The advice is rejected, not the auditor killed.
	RejectResourceLimit RejectCode = "ResourceLimit"
	// RejectShardConflict: the sharded audit plane's cross-shard merge
	// check failed — a store key's surviving write is claimed by more than
	// one shard's carry, or a shard's trace contains a request the shard
	// map routes elsewhere. Each shard's audit is sound in isolation; this
	// code says the shards do not compose into one partitioned server:
	// either the gateway misrouted (evidence: the trace) or two shards
	// both claim ownership of the same state.
	RejectShardConflict RejectCode = "ShardConflict"
	// RejectInternalFault: the verifier itself panicked on this input. The
	// audit boundary converts the panic into this rejection (stack attached)
	// so one malformed blob cannot take down the audit process; an
	// InternalFault is also a verifier bug worth filing.
	RejectInternalFault RejectCode = "InternalFault"
	// RejectUnauditable: the epoch could not be graded either way. Its
	// evidence was flagged degraded on the trusted channel (a crash-recovered
	// partial epoch, an advice outage, a torn response append) and the audit
	// did not accept — which proves nothing about the server, since complete
	// evidence might have. Unauditable is deliberately distinct from a
	// rejection: infrastructure faults must never manufacture accusations.
	// It is also sticky: once an epoch is unauditable the cross-epoch carry
	// is unanchored, so later epochs stay unauditable until a Fresh manifest
	// re-anchors the audit at rebuilt state.
	RejectUnauditable RejectCode = "Unauditable"
)

// String returns the stable operator-facing name of the code — the same
// token the CLI prints with -reason-code and README's reason-code table
// documents. The empty code (no verdict classification) reads "<uncoded>".
func (c RejectCode) String() string {
	if c == "" {
		return "<uncoded>"
	}
	return string(c)
}

// AllRejectCodes returns every defined rejection code, ordered by the audit
// layer that fires it (structural validation first, evidence degradation
// last). karousos-vet's rejectcode analyzer proves this registry exhaustive
// against the constant block above.
func AllRejectCodes() []RejectCode {
	return []RejectCode{
		RejectMalformedAdvice,
		RejectLogMismatch,
		RejectGraphCycle,
		RejectIsolationViolation,
		RejectOutputMismatch,
		RejectResourceLimit,
		RejectShardConflict,
		RejectInternalFault,
		RejectUnauditable,
	}
}

// Reject aborts an audit: verifier-side Ops implementations panic with it
// when untrusted advice fails a check, and the audit boundary recovers it
// into the verdict. It is exported so every layer (annotated-op replay,
// state-op checks, group execution) rejects uniformly.
type Reject struct {
	// Code classifies the rejection; legacy call sites that only supply a
	// reason default to MalformedAdvice.
	Code   RejectCode
	Reason string
	// Stack carries the captured goroutine stack for InternalFault
	// rejections, for diagnostics; empty otherwise.
	Stack string
}

// Error implements error.
func (r Reject) Error() string {
	if r.Code == "" {
		return "audit reject: " + r.Reason
	}
	return fmt.Sprintf("audit reject [%s]: %s", r.Code, r.Reason)
}

// Rejectf panics with a MalformedAdvice Reject carrying the formatted
// reason. Prefer RejectCodef at new call sites.
func Rejectf(format string, args ...any) {
	RejectCodef(RejectMalformedAdvice, format, args...)
}

// RejectCodef panics with a Reject carrying the given code and formatted
// reason.
func RejectCodef(code RejectCode, format string, args ...any) {
	panic(Reject{Code: code, Reason: fmt.Sprintf(format, args...)})
}

// RejectCodeOf extracts the rejection code from an audit error: the Reject's
// code if err is (or wraps) one, or "" for nil and non-reject errors.
func RejectCodeOf(err error) RejectCode {
	if err == nil {
		return ""
	}
	var rej Reject
	if errors.As(err, &rej) {
		return rej.Code
	}
	return ""
}
