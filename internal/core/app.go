package core

import (
	"fmt"

	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// HandlerFunc is the code of an event handler. It receives a Context bound to
// one handler activation (at the server) or to one group of corresponding
// activations (at the verifier), plus the payload of the activating event as
// a multivalue of the group's width.
type HandlerFunc func(ctx *Context, payload *mv.MV)

// App is a KEM program: a set of named handler functions, an initialization
// function (§3's designated, deterministic init), and the event name the
// runtime emits for each arriving request. Handlers registered for
// RequestEvent during Init are the request handlers.
//
// An App value must be stateless: all shared mutable state must flow through
// Variables or the transactional store so that the runtimes can record and
// replay it. Construct a fresh App per runtime via a factory so that
// Variable handles captured by closures are private to that runtime.
type App struct {
	Name         string
	RequestEvent EventName
	Funcs        map[FunctionID]HandlerFunc
	Init         func(ctx *Context)
}

// Func looks up handler code and panics if absent — a missing function is a
// malformed program, not adversarial input.
func (a *App) Func(fn FunctionID) HandlerFunc {
	f, ok := a.Funcs[fn]
	if !ok {
		panic(fmt.Sprintf("core: app %q has no function %q", a.Name, fn))
	}
	return f
}

// Variable is the identity of a loggable program variable (§4.2, §5). The
// paper's developer annotation ("OnInitialize") corresponds to creating the
// variable with Context.VarNew. Runtime state (current value, logs, version
// dictionary) lives inside the runtime, keyed by ID; the Variable itself is
// an immutable handle that application closures may capture freely.
type Variable struct {
	// ID must be unique within the application and stable across executions;
	// it doubles as the variable log key in the advice.
	ID VarID
}

// TxOpType enumerates the operations of the transactional KV store interface
// (§4.4): tx_start, PUT, GET, tx_commit, tx_abort.
type TxOpType uint8

const (
	TxStart TxOpType = iota
	TxPut
	TxGet
	TxCommit
	TxAbort
	// TxScan is a prefix range read — an extension past the paper's
	// implementation (its §1 lists range queries as future work). The scan's
	// result set is verified as a set of point reads (each returned row must
	// read from a legal dictating PUT, with all of §4.4's checks);
	// completeness of the result set (phantom freedom) is enforced by the
	// store's predicate locks at run time but, as in the paper, is not yet
	// re-verified by the audit.
	TxScan
)

func (t TxOpType) String() string {
	switch t {
	case TxStart:
		return "tx_start"
	case TxPut:
		return "PUT"
	case TxGet:
		return "GET"
	case TxCommit:
		return "tx_commit"
	case TxAbort:
		return "tx_abort"
	case TxScan:
		return "SCAN"
	}
	return fmt.Sprintf("TxOpType(%d)", uint8(t))
}

// Tx is a handle on an open transaction. A transaction may span several
// handler activations of the same request (§4.4 requires such handlers not
// be concurrent; our apps thread the handle through event payloads is not
// possible — they capture it in per-request continuation state — so the
// runtime enforces single-request ownership instead).
type Tx struct {
	ID TxID
	// Dead reports that the transaction was aborted (by the store on
	// conflict, or explicitly); further operations are programming errors.
	Dead bool
	// rid set at creation; the runtime rejects use from another request.
	rids []RID
}

// Ops is the runtime behind a Context: the Karousos server, the verifier's
// grouped re-executor, the Orochi-JS variants, or the plain baselines. Every
// method receives the acting Context (whose HID/Label identify the
// activation) and the already-assigned op number.
//
// Methods that replay untrusted advice abort the audit by panicking with
// Reject; the re-executor recovers it. Server-side implementations never
// reject.
type Ops interface {
	// VarInit runs the OnInitialize annotation (Figure 13 / Figure 20).
	VarInit(ctx *Context, v *Variable, opnum int, val *mv.MV)
	// VarRead runs the OnRead annotation and returns the observed value.
	VarRead(ctx *Context, v *Variable, opnum int) *mv.MV
	// VarWrite runs the write plus the OnWrite annotation.
	VarWrite(ctx *Context, v *Variable, opnum int, val *mv.MV)

	// Emit adds an event to the pending set (server) or enqueues the
	// activated handlers (verifier), per Figure 18/19.
	Emit(ctx *Context, opnum int, event EventName, payload *mv.MV)
	// Register and Unregister maintain the per-request listener table.
	Register(ctx *Context, opnum int, event EventName, fn FunctionID)
	Unregister(ctx *Context, opnum int, event EventName, fn FunctionID)

	// TxOp performs one transactional operation. For TxGet the returned
	// multivalue holds the read values (nil entries for absent keys); ok
	// is false when the store aborted the transaction (conflict) or, at the
	// verifier, when the advice records tx_abort at this op (Figure 19's
	// CheckStateOp tolerance).
	TxOp(ctx *Context, opnum int, tx *Tx, op TxOpType, key *mv.MV, val *mv.MV) (res *mv.MV, ok bool)

	// Respond delivers the response. opsIssued is the number of operations
	// the handler issued before responding (the responseEmittedBy opnum).
	Respond(ctx *Context, opsIssued int, payload *mv.MV)

	// Branch records (server) or checks (verifier) one control-flow
	// decision and returns the taken direction.
	Branch(ctx *Context, site string, cond *mv.MV) bool

	// Nondet records (server) or replays (verifier) a non-deterministic
	// operation (§5). gen produces the live value per request.
	Nondet(ctx *Context, opnum int, site string, gen func(rid RID) value.V) *mv.MV
}

// Context binds application code to one handler activation (server; width 1)
// or one group of corresponding activations (verifier; width = group size).
// It assigns op numbers, so the server and verifier count operations
// identically by construction.
type Context struct {
	ops   Ops
	rids  []RID
	hid   HID
	fn    FunctionID
	event EventName
	label Label // server-side only; InitLabel at the verifier
	opnum int
}

// NewContext is used by runtimes to enter a handler activation. label may be
// InitLabel for runtimes that do not track labels (the verifier climbs
// parent pointers instead).
func NewContext(ops Ops, rids []RID, hid HID, fn FunctionID, event EventName, label Label) *Context {
	return &Context{ops: ops, rids: rids, hid: hid, fn: fn, event: event, label: label}
}

// RIDs returns the request ids this context spans (length 1 at the server).
func (c *Context) RIDs() []RID { return c.rids }

// Width returns the group width; multivalues passed to this context must
// have this width.
func (c *Context) Width() int { return len(c.rids) }

// HID returns the handler activation id.
func (c *Context) HID() HID { return c.hid }

// FunctionID returns the id of the running handler function.
func (c *Context) FunctionID() FunctionID { return c.fn }

// Event returns the name of the event that activated this handler.
func (c *Context) Event() EventName { return c.event }

// ActivationLabel returns the server-assigned label (InitLabel at the
// verifier).
func (c *Context) ActivationLabel() Label { return c.label }

// OpsIssued returns how many operations this activation has issued so far.
func (c *Context) OpsIssued() int { return c.opnum }

func (c *Context) next() int {
	c.opnum++
	return c.opnum
}

// Scalar builds a collapsed multivalue of this context's width, normalizing
// the value into the canonical domain (ints become float64s, etc.).
func (c *Context) Scalar(v value.V) *mv.MV { return mv.Scalar(value.Normalize(v), len(c.rids)) }

// Apply is SIMD-on-demand computation over multivalues of this context's
// width; see mv.Apply. For performance the result is NOT normalized: the
// closure must return canonical values (use value.Map/List or plain float64,
// bool, string, nil). A stray Go int fails loudly at the next logging or
// comparison point.
func (c *Context) Apply(f func(args []value.V) value.V, ms ...*mv.MV) *mv.MV {
	return mv.Apply(f, ms...)
}

// VarNew creates a loggable variable and runs its OnInitialize annotation.
// IDs must be unique per application.
func (c *Context) VarNew(id string, initial *mv.MV) *Variable {
	v := &Variable{ID: VarID(id)}
	c.ops.VarInit(c, v, c.next(), initial)
	return v
}

// Read reads a loggable variable (OnRead annotation).
func (c *Context) Read(v *Variable) *mv.MV {
	return c.ops.VarRead(c, v, c.next())
}

// Write writes a loggable variable (OnWrite annotation).
func (c *Context) Write(v *Variable, val *mv.MV) {
	c.ops.VarWrite(c, v, c.next(), val)
}

// Emit adds an event with the given name and payload to the pending set; all
// functions currently registered for the name are activated with the payload
// (§3).
func (c *Context) Emit(event EventName, payload *mv.MV) {
	c.ops.Emit(c, c.next(), event, payload)
}

// Register adds fn as a listener for event within the current request.
func (c *Context) Register(event EventName, fn FunctionID) {
	c.ops.Register(c, c.next(), event, fn)
}

// Unregister removes fn as a listener for event within the current request.
func (c *Context) Unregister(event EventName, fn FunctionID) {
	c.ops.Unregister(c, c.next(), event, fn)
}

// TxStart opens a transaction. Its id is derived from (hid, opnum), so it
// corresponds across original execution and replay.
func (c *Context) TxStart() *Tx {
	opnum := c.next()
	tx := &Tx{
		ID:   TxID(value.DigestString(value.List(string(c.hid), int64(opnum)))),
		rids: c.rids,
	}
	c.ops.TxOp(c, opnum, tx, TxStart, nil, nil)
	return tx
}

func checkAlive(tx *Tx, op string) {
	if tx.Dead {
		panic(fmt.Sprintf("core: %s on dead transaction %s; after a failed operation the application must not touch the transaction again", op, tx.ID))
	}
}

// Get reads one row by primary key within tx. ok=false means the transaction
// was aborted by the store (conflict); the caller must take its abort path
// and must not touch the transaction again. Absent keys read as nil values,
// not as failures.
func (c *Context) Get(tx *Tx, key *mv.MV) (*mv.MV, bool) {
	checkAlive(tx, "Get")
	res, ok := c.ops.TxOp(c, c.next(), tx, TxGet, key, nil)
	if !ok {
		tx.Dead = true
	}
	return res, ok
}

// Put writes one row by primary key within tx. ok=false means the
// transaction was aborted by the store (conflict).
func (c *Context) Put(tx *Tx, key, val *mv.MV) bool {
	checkAlive(tx, "Put")
	_, ok := c.ops.TxOp(c, c.next(), tx, TxPut, key, val)
	if !ok {
		tx.Dead = true
	}
	return ok
}

// Scan reads every row whose key starts with the given prefix, in key
// order. The result is a list of {"key": k, "value": v} maps per group
// member; ok=false means the transaction was aborted by the store
// (conflict with a concurrent writer under predicate locking).
func (c *Context) Scan(tx *Tx, prefix *mv.MV) (*mv.MV, bool) {
	checkAlive(tx, "Scan")
	res, ok := c.ops.TxOp(c, c.next(), tx, TxScan, prefix, nil)
	if !ok {
		tx.Dead = true
	}
	return res, ok
}

// Commit attempts to commit tx; ok=false means it aborted instead.
func (c *Context) Commit(tx *Tx) bool {
	checkAlive(tx, "Commit")
	_, ok := c.ops.TxOp(c, c.next(), tx, TxCommit, nil, nil)
	tx.Dead = true
	return ok
}

// Abort rolls tx back. The transaction must still be alive: after a failed
// operation the store has already aborted it and recorded tx_abort, so a
// second abort would desynchronize replay from the logs.
func (c *Context) Abort(tx *Tx) {
	checkAlive(tx, "Abort")
	c.ops.TxOp(c, c.next(), tx, TxAbort, nil, nil)
	tx.Dead = true
}

// Respond delivers the response for every request this context spans. It
// does not consume an op number: responseEmittedBy records the count of
// operations issued before the response (C.1.3).
func (c *Context) Respond(payload *mv.MV) {
	c.ops.Respond(c, c.opnum, payload)
}

// Branch records one two-way control-flow decision; site names the branch
// site in the program text. The condition must collapse across the group —
// requests in one control-flow group take the same branches by construction,
// so a non-collapsed condition is divergence and the verifier rejects.
func (c *Context) Branch(site string, cond *mv.MV) bool {
	return c.ops.Branch(c, site, cond)
}

// BranchBool is Branch over an already-scalar Go condition; it exists so
// server-side code records branches even when the condition never passed
// through a multivalue.
func (c *Context) BranchBool(site string, cond bool) bool {
	return c.ops.Branch(c, site, c.Scalar(cond))
}

// Nondet evaluates a non-deterministic operation: at the server gen runs per
// request and the results are recorded in the advice; at the verifier the
// recorded results are replayed (§5).
func (c *Context) Nondet(site string, gen func(rid RID) value.V) *mv.MV {
	return c.ops.Nondet(c, c.next(), site, gen)
}
