package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelChild(t *testing.T) {
	root := InitLabel
	c0 := root.Child(0)
	c1 := root.Child(1)
	if c0 != "/0" || c1 != "/1" {
		t.Errorf("children = %q, %q", c0, c1)
	}
	gc := c0.Child(3)
	if gc != "/0/3" {
		t.Errorf("grandchild = %q", gc)
	}
}

func TestIsAncestorSegmentAware(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{InitLabel, "/0", true},
		{InitLabel, "/0/1/2", true},
		{"/0", "/0/1", true},
		{"/0", "/0/1/5", true},
		{"/0", "/0", false},        // not strict ancestor of itself
		{"/0", "/1", false},        // sibling
		{"/1", "/10", false},       // string prefix but not a segment prefix
		{"/1", "/1x", false},       // malformed sibling-ish label
		{"/0/1", "/0", false},      // descendant is not ancestor
		{"/0/1", "/0/10", false},   // segment-aware at depth 2
		{"/0/1", "/0/1/0", true},   // direct child
		{"/2/3", "/2/3/4/5", true}, // deep descendant
	}
	for _, c := range cases {
		if got := c.a.IsAncestor(c.b); got != c.want {
			t.Errorf("IsAncestor(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func op(rid RID, hid HID, num int, label Label) TaggedOp {
	return TaggedOp{Op: Op{RID: rid, HID: hid, Num: num}, Label: label}
}

func TestRPrecedesProgramOrder(t *testing.T) {
	a := op("r1", "h1", 1, "/0")
	b := op("r1", "h1", 2, "/0")
	if !RPrecedes(a, b) {
		t.Error("earlier op in same handler must R-precede")
	}
	if RPrecedes(b, a) {
		t.Error("later op must not R-precede earlier")
	}
	if RConcurrent(a, b) {
		t.Error("program-ordered ops are not R-concurrent")
	}
}

func TestRPrecedesAncestor(t *testing.T) {
	parent := op("r1", "hp", 5, "/0")
	child := op("r1", "hc", 1, "/0/0")
	// All parent ops R-precede all child ops, even when the parent op comes
	// after the activating emit (Definition 7 is handler-level).
	if !RPrecedes(parent, child) {
		t.Error("ancestor handler op must R-precede descendant op")
	}
	if RPrecedes(child, parent) {
		t.Error("descendant must not R-precede ancestor")
	}
}

func TestRConcurrentSiblings(t *testing.T) {
	s1 := op("r1", "ha", 1, "/0/0")
	s2 := op("r1", "hb", 1, "/0/1")
	if !RConcurrent(s1, s2) {
		t.Error("sibling handlers' ops are R-concurrent")
	}
}

func TestRConcurrentAcrossRequests(t *testing.T) {
	a := op("r1", "h", 1, "/0")
	b := op("r2", "h", 2, "/0")
	if !RConcurrent(a, b) {
		t.Error("ops of different requests are always R-concurrent")
	}
	if RPrecedes(a, b) || RPrecedes(b, a) {
		t.Error("no R-order across requests")
	}
}

func TestInitRPrecedesEverything(t *testing.T) {
	init := op(InitRID, InitHID, 3, InitLabel)
	req := op("r1", "h", 1, "/0")
	if !RPrecedes(init, req) {
		t.Error("init ops must R-precede request ops")
	}
	if RPrecedes(req, init) {
		t.Error("request ops must not R-precede init ops")
	}
	if RConcurrent(init, req) {
		t.Error("init and request ops are never R-concurrent")
	}
}

func TestInitOpsOrderedAmongThemselves(t *testing.T) {
	a := op(InitRID, InitHID, 1, InitLabel)
	b := op(InitRID, InitHID, 2, InitLabel)
	if !RPrecedes(a, b) || RPrecedes(b, a) {
		t.Error("init ops follow program order")
	}
}

func TestRConcurrentSameOpIsFalse(t *testing.T) {
	a := op("r1", "h", 1, "/0")
	if RConcurrent(a, a) {
		t.Error("an op is not R-concurrent with itself")
	}
}

func TestComputeHIDStability(t *testing.T) {
	h1 := ComputeHID("fn", "ev", "parent", 3)
	h2 := ComputeHID("fn", "ev", "parent", 3)
	if h1 != h2 {
		t.Error("hid not deterministic")
	}
	distinct := []HID{
		ComputeHID("fn2", "ev", "parent", 3),
		ComputeHID("fn", "ev2", "parent", 3),
		ComputeHID("fn", "ev", "parent2", 3),
		ComputeHID("fn", "ev", "parent", 4),
	}
	for i, d := range distinct {
		if d == h1 {
			t.Errorf("variant %d collided with base hid", i)
		}
	}
}

func TestRequestHID(t *testing.T) {
	if RequestHID("fn", "request") != ComputeHID("fn", "request", InitHID, 0) {
		t.Error("RequestHID must be (fn, null, 0) with the init activator")
	}
}

func TestOpString(t *testing.T) {
	s := Op{RID: "r1", HID: "0123456789abcdef", Num: 7}.String()
	if s == "" {
		t.Error("empty Op string")
	}
}

// randomLabel builds a label by descending a random number of levels.
func randomLabel(r *rand.Rand) Label {
	l := InitLabel
	depth := r.Intn(5)
	for i := 0; i < depth; i++ {
		l = l.Child(r.Intn(12))
	}
	return l
}

// TestQuickRPrecedesIsStrictPartialOrder checks irreflexivity, asymmetry and
// transitivity on random tagged ops (within one request, plus init).
func TestQuickRPrecedesIsStrictPartialOrder(t *testing.T) {
	gen := func(r *rand.Rand) TaggedOp {
		if r.Intn(8) == 0 {
			return op(InitRID, InitHID, 1+r.Intn(4), InitLabel)
		}
		l := randomLabel(r)
		return op("r1", HID("h"+string(l)), 1+r.Intn(4), l)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		// Irreflexive.
		if RPrecedes(a, a) && a.Op != (Op{}) && a.RID != InitRID {
			return false
		}
		// Asymmetric (for distinct ops).
		if a.Op != b.Op && RPrecedes(a, b) && RPrecedes(b, a) {
			return false
		}
		// Transitive.
		if RPrecedes(a, b) && RPrecedes(b, c) && a.Op != c.Op && !RPrecedes(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickAncestorMatchesPathPrefix cross-checks label ancestry against an
// explicit path representation.
func TestQuickAncestorMatchesPathPrefix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pa := make([]int, r.Intn(4))
		pb := make([]int, r.Intn(4))
		for i := range pa {
			pa[i] = r.Intn(11)
		}
		for i := range pb {
			pb[i] = r.Intn(11)
		}
		la, lb := InitLabel, InitLabel
		for _, x := range pa {
			la = la.Child(x)
		}
		for _, x := range pb {
			lb = lb.Child(x)
		}
		isPrefix := len(pa) < len(pb)
		if isPrefix {
			for i := range pa {
				if pa[i] != pb[i] {
					isPrefix = false
					break
				}
			}
		}
		return la.IsAncestor(lb) == isPrefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
