package core

import (
	"testing"

	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// recordingOps captures the op numbers the Context assigns, to pin down the
// numbering contract shared by server and verifier.
type recordingOps struct {
	calls []string
	nums  []int
}

func (r *recordingOps) note(kind string, n int) {
	r.calls = append(r.calls, kind)
	r.nums = append(r.nums, n)
}

func (r *recordingOps) VarInit(ctx *Context, v *Variable, opnum int, val *mv.MV) {
	r.note("varinit", opnum)
}
func (r *recordingOps) VarRead(ctx *Context, v *Variable, opnum int) *mv.MV {
	r.note("read", opnum)
	return ctx.Scalar(nil)
}
func (r *recordingOps) VarWrite(ctx *Context, v *Variable, opnum int, val *mv.MV) {
	r.note("write", opnum)
}
func (r *recordingOps) Emit(ctx *Context, opnum int, event EventName, payload *mv.MV) {
	r.note("emit", opnum)
}
func (r *recordingOps) Register(ctx *Context, opnum int, event EventName, fn FunctionID) {
	r.note("register", opnum)
}
func (r *recordingOps) Unregister(ctx *Context, opnum int, event EventName, fn FunctionID) {
	r.note("unregister", opnum)
}
func (r *recordingOps) TxOp(ctx *Context, opnum int, tx *Tx, op TxOpType, key *mv.MV, val *mv.MV) (*mv.MV, bool) {
	r.note("tx:"+op.String(), opnum)
	return ctx.Scalar(nil), true
}
func (r *recordingOps) Respond(ctx *Context, opsIssued int, payload *mv.MV) {
	r.note("respond", opsIssued)
}
func (r *recordingOps) Branch(ctx *Context, site string, cond *mv.MV) bool {
	b, _ := cond.Bool()
	return b
}
func (r *recordingOps) Nondet(ctx *Context, opnum int, site string, gen func(rid RID) value.V) *mv.MV {
	r.note("nondet", opnum)
	return ctx.Scalar(nil)
}

func TestOpNumbering(t *testing.T) {
	rec := &recordingOps{}
	ctx := NewContext(rec, []RID{"r1"}, "h1", "fn", "ev", "/0")
	v := ctx.VarNew("x", ctx.Scalar(0))                       // op 1
	_ = ctx.Read(v)                                           // op 2
	ctx.Write(v, ctx.Scalar(1))                               // op 3
	ctx.Emit("e", ctx.Scalar(nil))                            // op 4
	ctx.Register("e", "f")                                    // op 5
	ctx.Unregister("e", "f")                                  // op 6
	tx := ctx.TxStart()                                       // op 7
	_, _ = ctx.Get(tx, ctx.Scalar("k"))                       // op 8
	_ = ctx.Put(tx, ctx.Scalar("k"), ctx.Scalar(1))           // op 9
	_ = ctx.Commit(tx)                                        // op 10
	_ = ctx.Nondet("n", func(rid RID) value.V { return nil }) // op 11
	// Branch consumes no op number.
	_ = ctx.Branch("b", ctx.Scalar(true))
	ctx.Respond(ctx.Scalar("out")) // reports 11 ops issued, no own number

	wantNums := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 11}
	if len(rec.nums) != len(wantNums) {
		t.Fatalf("calls = %v nums = %v", rec.calls, rec.nums)
	}
	for i := range wantNums {
		if rec.nums[i] != wantNums[i] {
			t.Errorf("call %s got op %d, want %d", rec.calls[i], rec.nums[i], wantNums[i])
		}
	}
	if ctx.OpsIssued() != 11 {
		t.Errorf("OpsIssued = %d", ctx.OpsIssued())
	}
}

func TestContextAccessors(t *testing.T) {
	rec := &recordingOps{}
	ctx := NewContext(rec, []RID{"r1", "r2"}, "h", "fn", "ev", "/1")
	if ctx.Width() != 2 || len(ctx.RIDs()) != 2 {
		t.Error("width wrong")
	}
	if ctx.HID() != "h" || ctx.FunctionID() != "fn" || ctx.Event() != "ev" || ctx.ActivationLabel() != "/1" {
		t.Error("accessors wrong")
	}
	if s := ctx.Scalar(5); s.Width() != 2 || s.At(0) != float64(5) {
		t.Error("Scalar should normalize and span the group width")
	}
}

func TestTxIDDeterministic(t *testing.T) {
	mk := func() TxID {
		ctx := NewContext(&recordingOps{}, []RID{"r1"}, "h1", "fn", "ev", "/0")
		return ctx.TxStart().ID
	}
	if mk() != mk() {
		t.Error("tx id must be deterministic in (hid, opnum)")
	}
	// A tx started at a different op number must get a different id.
	ctx := NewContext(&recordingOps{}, []RID{"r1"}, "h1", "fn", "ev", "/0")
	t1 := ctx.TxStart()
	t2 := ctx.TxStart()
	if t1.ID == t2.ID {
		t.Error("distinct tx starts share an id")
	}
}

func TestDeadTransactionPanics(t *testing.T) {
	ctx := NewContext(&recordingOps{}, []RID{"r1"}, "h1", "fn", "ev", "/0")
	tx := ctx.TxStart()
	ctx.Abort(tx)
	for name, f := range map[string]func(){
		"get":    func() { ctx.Get(tx, ctx.Scalar("k")) },
		"put":    func() { ctx.Put(tx, ctx.Scalar("k"), ctx.Scalar(1)) },
		"commit": func() { ctx.Commit(tx) },
		"abort":  func() { ctx.Abort(tx) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on dead transaction should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBranchBool(t *testing.T) {
	ctx := NewContext(&recordingOps{}, []RID{"r1"}, "h1", "fn", "ev", "/0")
	if !ctx.BranchBool("b", true) || ctx.BranchBool("b", false) {
		t.Error("BranchBool wrong")
	}
}

func TestAppFuncLookup(t *testing.T) {
	app := &App{Name: "a", Funcs: map[FunctionID]HandlerFunc{
		"f": func(ctx *Context, p *mv.MV) {},
	}}
	if app.Func("f") == nil {
		t.Error("existing function not found")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown function should panic")
		}
	}()
	app.Func("missing")
}

func TestRejectf(t *testing.T) {
	defer func() {
		r := recover()
		rej, ok := r.(Reject)
		if !ok {
			t.Fatalf("Rejectf panicked with %T", r)
		}
		if rej.Error() == "" || rej.Reason == "" {
			t.Error("empty reject reason")
		}
	}()
	Rejectf("bad %s", "advice")
}
