package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRejectCodeRegistry pins the contract karousos-vet's rejectcode
// analyzer and the docs both rely on: every code has a stable String name,
// the AllRejectCodes registry has no duplicates, and README's reason-code
// table stays in lockstep with the constant block — in both directions.
func TestRejectCodeRegistry(t *testing.T) {
	codes := AllRejectCodes()
	seen := map[RejectCode]bool{}
	for _, c := range codes {
		if c.String() == "" || c.String() == "<uncoded>" {
			t.Errorf("code %q has no String name", string(c))
		}
		if c.String() != string(c) {
			t.Errorf("String() of %q drifted to %q", string(c), c.String())
		}
		if seen[c] {
			t.Errorf("duplicate code %s in AllRejectCodes", c)
		}
		seen[c] = true
	}
	if RejectCode("").String() != "<uncoded>" {
		t.Errorf("empty code String() = %q, want <uncoded>", RejectCode("").String())
	}

	documented := readmeReasonCodes(t)
	for _, c := range codes {
		if !documented[string(c)] {
			t.Errorf("code %s missing from README's reason-code table", c)
		}
	}
	for name := range documented {
		if !seen[RejectCode(name)] {
			t.Errorf("README documents reason code %q that AllRejectCodes does not define", name)
		}
	}
}

// readmeReasonCodes parses the `| reason code | ... |` table out of the
// repo-root README and returns the backticked code of each row.
func readmeReasonCodes(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "| reason code |") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("README.md has no `| reason code |` table")
	}
	out := map[string]bool{}
	for _, l := range lines[start+2:] { // skip header and |---|---| rule
		if !strings.HasPrefix(l, "|") {
			break
		}
		cells := strings.SplitN(l, "|", 3)
		if len(cells) < 3 {
			continue
		}
		name := strings.Trim(strings.TrimSpace(cells[1]), "`")
		if name != "" {
			out[name] = true
		}
	}
	if len(out) == 0 {
		t.Fatal("README reason-code table parsed to zero rows")
	}
	return out
}
