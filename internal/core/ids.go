// Package core defines KEM, the execution model of the paper (§3), as a Go
// library: events, handler activations, handler identifiers, activation
// labels, the activation partial order A, and the replay order R (§4.2,
// Definitions 7–8). It also defines the application-facing API — App,
// Context, Variable, Tx — through which the same program text executes under
// the Karousos server (advice collection), the Karousos verifier (grouped
// multivalue re-execution), and the baselines. The role-specific behavior
// hides behind the Ops interface, mirroring how the paper's transpiler emits
// an instrumented server and a verifier from one source program.
package core

import (
	"fmt"
	"strings"

	"karousos.dev/karousos/internal/value"
)

// RID identifies a request globally (C.1.2).
type RID string

// InitRID is the pseudo-request id of the initialization activation I (§3):
// the initialization function is treated as a handler activation that is the
// activator of every request handler.
const InitRID RID = "@init"

// HID identifies a handler activation. It is the digest of (functionID,
// activating event, activator's HID, index of the activating emit within the
// activator), so it is unique within a request and — crucially for batching —
// equal across requests that induce the same tree of handlers (§5, C.1.2).
type HID string

// InitHID is the handler id of the initialization activation I.
const InitHID HID = "@I"

// EpochCarryBase is the first op number used for the synthetic init-level
// writes that carry verified variable state across epoch boundaries in the
// continuous-audit pipeline. The server (when rebasing its in-memory
// variable state at an epoch seal) and the verifier (when injecting carried
// state after replaying init) must agree on these op identities: carried
// variables are assigned ops {InitRID, InitHID, EpochCarryBase+i} in sorted
// VarID order. The base sits far above any op number a real init function
// issues, and below the codec's MaxInt32 integer clamp.
const EpochCarryBase = 1 << 30

// FunctionID names a piece of handler code (a closure in the paper; a Go
// function registered in App.Funcs here).
type FunctionID string

// EventName names an event type (§3).
type EventName string

// VarID identifies a loggable program variable globally.
type VarID string

// TxID identifies a transaction. Both the server and the verifier derive it
// deterministically from the (hid, opnum) of the tx_start operation
// (Appendix C, Sub-lemma 2.3), so it corresponds across executions.
type TxID string

// Label is a handler activation's position in the activation tree, encoded
// so that h is an ancestor of h' under the activation partial order A iff
// h's label is a proper prefix of h's label (§5). Mechanically a label is
// parentLabel + "/" + childIndex; the initialization activation I has the
// empty label, making it the ancestor of everything.
type Label string

// InitLabel is the label of the initialization activation I.
const InitLabel Label = ""

// Child returns the label of the n-th activated child of the labeled
// handler.
func (l Label) Child(n int) Label {
	return Label(fmt.Sprintf("%s/%d", l, n))
}

// IsAncestor reports whether l strictly precedes other in the activation
// partial order A, i.e. whether l labels an ancestor activation.
func (l Label) IsAncestor(other Label) bool {
	if l == other {
		return false
	}
	return strings.HasPrefix(string(other), string(l)+"/")
}

// Op names one special operation of one handler activation: handler ops
// (emit/register/unregister), external state ops, annotated variable ops, and
// recorded non-deterministic ops all consume one op number each, numbered
// from 1 (Figure 14 gives each handler nodes 0..opcounts plus ∞).
type Op struct {
	RID RID
	HID HID
	Num int
}

func (o Op) String() string {
	return fmt.Sprintf("(%s,%s,%d)", o.RID, shortHID(o.HID), o.Num)
}

func shortHID(h HID) string {
	if len(h) > 8 {
		return string(h[:8])
	}
	return string(h)
}

// TaggedOp pairs an operation with its handler's activation label, which is
// all the server needs to evaluate R-precedence at logging time (Figure 13's
// Rconcurrent test).
type TaggedOp struct {
	Op
	Label Label
}

// RPrecedes implements Definition 7: a R-precedes b iff they belong to the
// same request and either they are in the same handler with a earlier in
// program order, or a's handler is an ancestor of b's handler in the
// activation tree. Operations of the initialization activation I additionally
// R-precede every request operation, since I is the activator of all request
// handlers (§3); this is what makes init-time writes replay-safe without
// logging.
func RPrecedes(a, b TaggedOp) bool {
	if a.RID == InitRID && b.RID != InitRID {
		return true
	}
	if a.RID != b.RID {
		return false
	}
	if a.HID == b.HID {
		return a.Num < b.Num
	}
	return a.Label.IsAncestor(b.Label)
}

// RConcurrent implements Definition 8: two distinct operations are
// R-concurrent iff neither R-precedes the other. R-concurrent pairs are
// exactly what the Karousos server must log (§4.2).
func RConcurrent(a, b TaggedOp) bool {
	if a.Op == b.Op {
		return false
	}
	return !RPrecedes(a, b) && !RPrecedes(b, a)
}

// ComputeHID derives a handler id per §5 and C.1.2: a digest of the
// functionID, the activating event's name, the activator's hid, and the
// index (opnum) of the activating emit within the activator. Request
// handlers use parent InitHID and emit index 0.
func ComputeHID(fn FunctionID, event EventName, parent HID, emitOp int) HID {
	return HID(value.DigestString(value.List(string(fn), string(event), string(parent), int64(emitOp))))
}

// RequestHID is the handler id of a request handler activation for the given
// function: hid = (functionID, null, 0) per Figure 18 line 11.
func RequestHID(fn FunctionID, event EventName) HID {
	return ComputeHID(fn, event, InitHID, 0)
}
