// Package loadgen is the open-loop load generator behind the serving
// path's load story (DESIGN.md §14). Open-loop means arrivals are paced by
// a clock, not by completions: request i is due at start + i/rate whether
// or not earlier requests have finished, which is how real traffic behaves
// and exactly what closed-loop generators hide (closed loops slow their
// offered load down to whatever the server survives, so overload never
// shows). When the outstanding-request bound is hit, a due arrival is shed
// locally and counted — the generator itself never queues without bound,
// for the same reason the collector doesn't.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the collector to drive (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// App selects the workload generator: "motd", "stacks", "wiki", or
	// "feeds".
	App string
	// Mix is the read/write mix for motd, stacks, and feeds; ignored by
	// wiki. Empty means workload.Mixed.
	Mix workload.Mix
	// Requests is how many arrivals to offer.
	Requests int
	// Rate is the open-loop arrival rate in requests/second. 0 means no
	// pacing: every arrival is due immediately (a pure burst).
	Rate float64
	// MaxOutstanding bounds concurrently outstanding requests; a due
	// arrival past the bound is shed locally. <=0 means 64.
	MaxOutstanding int
	// Seed seeds the workload generator — same seed, same request stream.
	Seed int64
	// RepeatMix rewrites this fraction of arrivals to the app's fixed pool
	// of recurring read-only request shapes (workload.Repeats) — the
	// steady-state traffic that exercises the auditor's cross-epoch memo
	// cache. 0 disables; must stay within [0,1].
	RepeatMix float64
	// Timeout bounds one request end to end. <=0 means 30s.
	Timeout time.Duration
	// SlowEvery, when >0, sends every Nth request's body through a
	// trickling chunked reader — the slow-client (slowloris-shaped)
	// overload ingredient.
	SlowEvery int
	// SlowChunkDelay is the pause between a slow client's body chunks.
	// <=0 means 2ms.
	SlowChunkDelay time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// TrackShards is gateway-target mode: split the ledger per shard using
	// the X-Karousos-Shard response header, and count a 503 that carries
	// Retry-After as Degraded503 (partial-shard degradation, a promised
	// overload/partition outcome) rather than a server error.
	TrackShards bool
}

// ShardLedger is one shard's slice of the accounting in gateway-target
// mode, keyed by the X-Karousos-Shard header the gateway echoes.
type ShardLedger struct {
	OK          int `json:"ok"`
	Shed429     int `json:"shed429"`
	Degraded503 int `json:"degraded503"`
	ServerErr   int `json:"serverErr"`
	Other       int `json:"other"`
}

// Result is one load run's outcome, split the way the overload invariants
// need: every offered arrival is accounted to exactly one bucket, and the
// acked RIDs are the set the sealed log must contain.
type Result struct {
	Offered   int `json:"offered"`
	OK        int `json:"ok"`
	Shed429   int `json:"shed429"`
	ShedLocal int `json:"shedLocal"`
	ServerErr int `json:"serverErr"`
	NetErr    int `json:"netErr"`
	// OtherStatus counts responses outside {200, 429, 5xx-as-ServerErr}.
	// The overload invariant is that this stays zero.
	OtherStatus int `json:"otherStatus"`
	// Degraded503 counts 503s carrying Retry-After in gateway-target mode:
	// a shard's breaker shedding its own keyspace, not a server error.
	Degraded503 int `json:"degraded503,omitempty"`
	// Shards is the per-shard ledger in gateway-target mode, keyed by the
	// X-Karousos-Shard header ("" collects responses without one).
	Shards map[string]*ShardLedger `json:"shards,omitempty"`
	// RetryAfterSeen reports whether at least one 429 carried the hint.
	RetryAfterSeen bool `json:"retryAfterSeen"`
	// AckedRIDs are the RIDs of every 200 — the requests the collector is
	// now on the hook to have made durable.
	AckedRIDs []string      `json:"-"`
	Elapsed   time.Duration `json:"elapsedNanos"`
	Hist      *Histogram    `json:"-"`
	// P50/P99/P999 are the latency quantiles over completed requests, for
	// the JSON summary.
	P50  time.Duration `json:"p50Nanos"`
	P99  time.Duration `json:"p99Nanos"`
	P999 time.Duration `json:"p999Nanos"`
}

// requests builds the deterministic request stream for cfg.
func requests(cfg Config) ([]server.Request, error) {
	mix := cfg.Mix
	if mix == "" {
		mix = workload.Mixed
	}
	app := strings.ToLower(cfg.App)
	var reqs []server.Request
	switch app {
	case "", "motd":
		reqs = workload.MOTD(cfg.Requests, mix, cfg.Seed)
	case "stacks":
		reqs = workload.Stacks(cfg.Requests, mix, cfg.Seed, workload.DefaultStacksOptions())
	case "wiki":
		reqs = workload.Wiki(cfg.Requests, cfg.Seed)
	case "feeds":
		reqs = workload.Feeds(cfg.Requests, mix, cfg.Seed)
	default:
		return nil, fmt.Errorf("loadgen: unknown app %q", cfg.App)
	}
	return workload.WithRepeats(reqs, app, cfg.RepeatMix, cfg.Seed)
}

// slowBody trickles a payload out in small delayed chunks — a client on a
// bad link, or a deliberate slowloris. Sent without a content length so
// the server cannot size-check its way out of reading slowly.
type slowBody struct {
	data  []byte
	delay time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(s.delay)
	n := 16
	if n > len(s.data) {
		n = len(s.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

// Run offers cfg.Requests arrivals open-loop and returns the accounting.
// The context cancels pacing between arrivals; requests already in flight
// finish under their own timeout.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	reqs, err := requests(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 64
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	chunkDelay := cfg.SlowChunkDelay
	if chunkDelay <= 0 {
		chunkDelay = 2 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	res := &Result{Hist: NewHistogram()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.MaxOutstanding)
	start := time.Now()

	for i, r := range reqs {
		if cfg.Rate > 0 {
			due := start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-ctx.Done():
					res.Elapsed = time.Since(start)
					return res, ctx.Err()
				case <-time.After(d):
				}
			}
		}
		res.Offered++
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the arrival was due now; with the outstanding
			// bound full it is shed at the source, never queued.
			res.ShedLocal++
			continue
		}
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			<-sem
			return res, err
		}
		slow := cfg.SlowEvery > 0 && i%cfg.SlowEvery == cfg.SlowEvery-1
		wg.Add(1)
		go func(body []byte, slow bool) {
			defer wg.Done()
			defer func() { <-sem }()
			reqStart := time.Now()
			rctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			var rd io.Reader = bytes.NewReader(body)
			if slow {
				rd = &slowBody{data: body, delay: chunkDelay}
			}
			req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.BaseURL+"/invoke", rd)
			if err != nil {
				mu.Lock()
				res.NetErr++
				mu.Unlock()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				mu.Lock()
				res.NetErr++
				mu.Unlock()
				return
			}
			out, readErr := io.ReadAll(resp.Body)
			resp.Body.Close()
			lat := time.Since(reqStart)

			mu.Lock()
			defer mu.Unlock()
			res.Hist.Observe(lat)
			var ledger *ShardLedger
			if cfg.TrackShards {
				if res.Shards == nil {
					res.Shards = make(map[string]*ShardLedger)
				}
				key := resp.Header.Get(gateway.ShardHeader)
				if ledger = res.Shards[key]; ledger == nil {
					ledger = &ShardLedger{}
					res.Shards[key] = ledger
				}
			}
			switch {
			case readErr != nil:
				res.NetErr++
			case resp.StatusCode == http.StatusOK:
				var decoded struct {
					RID string `json:"rid"`
				}
				if err := json.Unmarshal(out, &decoded); err != nil || decoded.RID == "" {
					res.OtherStatus++
					if ledger != nil {
						ledger.Other++
					}
					return
				}
				res.OK++
				res.AckedRIDs = append(res.AckedRIDs, decoded.RID)
				if ledger != nil {
					ledger.OK++
				}
			case resp.StatusCode == http.StatusTooManyRequests:
				res.Shed429++
				if resp.Header.Get("Retry-After") != "" {
					res.RetryAfterSeen = true
				}
				if ledger != nil {
					ledger.Shed429++
				}
			case cfg.TrackShards && resp.StatusCode == http.StatusServiceUnavailable &&
				resp.Header.Get("Retry-After") != "":
				// The gateway's partial-shard degradation: the breaker is
				// shedding exactly this shard's keyspace, with a hint — a
				// promised outcome, not an overload-invariant breach.
				res.Degraded503++
				ledger.Degraded503++
			case resp.StatusCode >= 500:
				res.ServerErr++
				if ledger != nil {
					ledger.ServerErr++
				}
			default:
				res.OtherStatus++
				if ledger != nil {
					ledger.Other++
				}
			}
		}(body, slow)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	sort.Strings(res.AckedRIDs)
	res.P50 = res.Hist.Quantile(0.50)
	res.P99 = res.Hist.Quantile(0.99)
	res.P999 = res.Hist.Quantile(0.999)
	return res, nil
}

// Summary renders the run the way the CLI prints it.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %d in %v (%.1f req/s completed)\n", r.Offered, r.Elapsed.Round(time.Millisecond), float64(r.OK)/r.Elapsed.Seconds())
	fmt.Fprintf(&b, "  ok %d  shed429 %d  shedLocal %d  serverErr %d  netErr %d  other %d",
		r.OK, r.Shed429, r.ShedLocal, r.ServerErr, r.NetErr, r.OtherStatus)
	if r.Degraded503 > 0 {
		fmt.Fprintf(&b, "  degraded503 %d", r.Degraded503)
	}
	b.WriteString("\n")
	if len(r.Shards) > 0 {
		keys := make([]string, 0, len(r.Shards))
		for k := range r.Shards {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			l := r.Shards[k]
			fmt.Fprintf(&b, "  shard %-4s ok %d  shed429 %d  degraded503 %d  serverErr %d  other %d\n",
				k, l.OK, l.Shed429, l.Degraded503, l.ServerErr, l.Other)
		}
	}
	fmt.Fprintf(&b, "  latency p50 %v  p99 %v  p99.9 %v  mean %v\n",
		r.Hist.Quantile(0.50).Round(time.Microsecond), r.Hist.Quantile(0.99).Round(time.Microsecond),
		r.Hist.Quantile(0.999).Round(time.Microsecond), r.Hist.Mean().Round(time.Microsecond))
	return b.String()
}
