package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/value"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	// Log buckets are pessimistic by at most one growth step.
	if p50 < 500*time.Millisecond || p50 > 650*time.Millisecond {
		t.Fatalf("p50 = %v, want ~500ms within one bucket", p50)
	}
	if p99 < 990*time.Millisecond || p99 > 1300*time.Millisecond {
		t.Fatalf("p99 = %v, want ~990ms within one bucket", p99)
	}
	if p99 < p50 {
		t.Fatalf("quantiles not monotone: p50 %v > p99 %v", p50, p99)
	}
	if h.Mean() != 500500*time.Microsecond {
		t.Fatalf("mean = %v, want exact 500.5ms", h.Mean())
	}
	if got := NewHistogram().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

func TestDeterministicStream(t *testing.T) {
	a, err := requests(Config{App: "wiki", Requests: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := requests(Config{App: "wiki", Requests: 20, Seed: 7})
	for i := range a {
		if !value.Equal(a[i].Input, b[i].Input) {
			t.Fatalf("request %d differs across same-seed generations", i)
		}
	}
	if _, err := requests(Config{App: "nope", Requests: 1}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestRunAccountsEveryArrival drives a real collector and checks the
// load-run ledger balances: every offered arrival lands in exactly one
// bucket, every 200 carries a RID, and the sealed log holds every acked
// request.
func TestRunAccountsEveryArrival(t *testing.T) {
	dir := t.TempDir()
	c, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:        ts.URL,
		App:            "motd",
		Requests:       48,
		MaxOutstanding: 8,
		Seed:           3,
		Client:         ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 48 {
		t.Fatalf("offered %d, want 48", res.Offered)
	}
	if got := res.OK + res.Shed429 + res.ShedLocal + res.ServerErr + res.NetErr + res.OtherStatus; got != 48 {
		t.Fatalf("ledger does not balance: %+v sums to %d", res, got)
	}
	if res.ServerErr != 0 || res.OtherStatus != 0 || res.NetErr != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if len(res.AckedRIDs) != res.OK {
		t.Fatalf("%d acked RIDs for %d OKs", len(res.AckedRIDs), res.OK)
	}
	if res.Hist.Count() == 0 || res.P50 <= 0 {
		t.Fatalf("no latency recorded: %+v", res)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acked RID appears as a REQ in some sealed epoch.
	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	inLog := map[string]bool{}
	for _, m := range sealed {
		tr, _, _, err := epochlog.ReadSealed(dir, m.Seq, epochlog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rid := range tr.RIDs() {
			inLog[rid] = true
		}
	}
	for _, rid := range res.AckedRIDs {
		if !inLog[rid] {
			t.Fatalf("acked rid %s missing from the sealed log", rid)
		}
	}
}

// TestOpenLoopShedsLocally: rate 0 offers everything at once; with one
// outstanding slot most arrivals must shed at the source, not queue.
func TestOpenLoopShedsLocally(t *testing.T) {
	c, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:        ts.URL,
		Requests:       64,
		MaxOutstanding: 1,
		Client:         ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedLocal == 0 {
		t.Fatalf("burst with 1 outstanding slot shed nothing: %+v", res)
	}
	if res.OK+res.ShedLocal+res.Shed429 != 64 {
		t.Fatalf("ledger: %+v", res)
	}
}
