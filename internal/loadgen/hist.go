package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// Histogram is a fixed-size log-bucketed latency histogram: 64 buckets
// starting at 10µs, each 1.25× the last (reaching past 20 minutes), so
// tail quantiles cost O(1) memory no matter how many requests a run
// offers. Quantiles come back as the upper bound of the bucket the rank
// falls in — pessimistic by at most one bucket width (25%), which is the
// right bias for latency SLO reporting.
type Histogram struct {
	counts [64]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

const (
	histBase   = 10 * time.Microsecond
	histGrowth = 1.25
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketFor(d time.Duration) int {
	bound := histBase
	for i := 0; i < len(Histogram{}.counts)-1; i++ {
		if d <= bound {
			return i
		}
		bound = time.Duration(float64(bound) * histGrowth)
	}
	return len(Histogram{}.counts) - 1
}

// bucketBound returns bucket i's upper latency bound.
func bucketBound(i int) time.Duration {
	bound := histBase
	for ; i > 0; i-- {
		bound = time.Duration(float64(bound) * histGrowth)
	}
	return bound
}

// Observe records one latency. Not safe for concurrent use; callers hold
// their own lock.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean latency (the sum is tracked outside the
// buckets), zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the latency bound below which a q fraction of
// observations fall; q outside (0,1] is clamped. Empty histograms report 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0.0000001
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == len(h.counts)-1 {
				return h.max
			}
			return bucketBound(i)
		}
	}
	return h.max
}

// String renders the populated buckets, one per line.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count %d mean %v max %v\n", h.total, h.Mean().Round(time.Microsecond), h.max.Round(time.Microsecond))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "  ≤%-12v %d\n", bucketBound(i).Round(time.Microsecond), c)
	}
	return b.String()
}
