package mv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"karousos.dev/karousos/internal/value"
)

func TestScalarCollapsed(t *testing.T) {
	m := Scalar("x", 5)
	if !m.Collapsed() || m.Width() != 5 {
		t.Fatalf("Scalar: collapsed=%v width=%d", m.Collapsed(), m.Width())
	}
	for i := 0; i < 5; i++ {
		if m.At(i) != "x" {
			t.Errorf("At(%d) = %v", i, m.At(i))
		}
	}
	if v, ok := m.Single(); !ok || v != "x" {
		t.Errorf("Single = %v, %v", v, ok)
	}
}

func TestScalarZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scalar with width 0 should panic")
		}
	}()
	Scalar("x", 0)
}

func TestFromValsCollapsesEqual(t *testing.T) {
	m := FromVals([]value.V{value.Map("a", 1), value.Map("a", 1), value.Map("a", 1)})
	if !m.Collapsed() {
		t.Error("equal entries should collapse")
	}
	m2 := FromVals([]value.V{"a", "a", "b"})
	if m2.Collapsed() {
		t.Error("unequal entries must not collapse")
	}
	if m2.At(2) != "b" {
		t.Errorf("At(2) = %v", m2.At(2))
	}
	if _, ok := m2.Single(); ok {
		t.Error("Single on expanded MV should report !ok")
	}
}

func TestFromValsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromVals(nil) should panic")
		}
	}()
	FromVals(nil)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	Scalar("x", 2).At(2)
}

func TestAll(t *testing.T) {
	m := FromVals([]value.V{float64(1), float64(2)})
	all := m.All()
	if len(all) != 2 || all[0] != float64(1) || all[1] != float64(2) {
		t.Errorf("All = %v", all)
	}
	// All returns a fresh slice: mutating it must not affect the MV.
	all[0] = float64(9)
	if m.At(0) != float64(1) {
		t.Error("All exposed internal storage")
	}
}

func TestBool(t *testing.T) {
	if b, ok := Scalar(true, 3).Bool(); !ok || !b {
		t.Error("Scalar(true) Bool failed")
	}
	if _, ok := Scalar("yes", 1).Bool(); ok {
		t.Error("non-bool scalar should fail Bool")
	}
	if _, ok := FromVals([]value.V{true, false}).Bool(); ok {
		t.Error("diverging bools should fail Bool")
	}
}

func TestApplyDedup(t *testing.T) {
	calls := 0
	f := func(args []value.V) value.V {
		calls++
		return args[0].(float64) + args[1].(float64)
	}
	// All collapsed: one call, collapsed result.
	out := Apply(f, Scalar(float64(1), 4), Scalar(float64(2), 4))
	if calls != 1 {
		t.Errorf("collapsed Apply called f %d times, want 1", calls)
	}
	if !out.Collapsed() || out.At(0) != float64(3) {
		t.Errorf("out = %v", out)
	}
	// One expanded: per-entry calls.
	calls = 0
	out = Apply(f, FromVals([]value.V{float64(1), float64(2), float64(3), float64(4)}), Scalar(float64(10), 4))
	if calls != 4 {
		t.Errorf("expanded Apply called f %d times, want 4", calls)
	}
	if out.Collapsed() {
		t.Error("distinct outputs should stay expanded")
	}
	if out.At(2) != float64(13) {
		t.Errorf("out[2] = %v", out.At(2))
	}
}

func TestApplyRecollapses(t *testing.T) {
	// Expanded inputs whose outputs agree must collapse back.
	f := func(args []value.V) value.V { return "const" }
	out := Apply(f, FromVals([]value.V{"a", "b"}))
	if !out.Collapsed() {
		t.Error("uniform outputs should re-collapse")
	}
}

func TestApplyWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch should panic")
		}
	}()
	Apply(func(a []value.V) value.V { return nil }, Scalar("x", 2), Scalar("y", 3))
}

func TestApplyNoArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with no arguments should panic")
		}
	}()
	Apply(func(a []value.V) value.V { return nil })
}

func TestEqual(t *testing.T) {
	a := FromVals([]value.V{"x", "y"})
	b := FromVals([]value.V{"x", "y"})
	c := FromVals([]value.V{"x", "z"})
	if !Equal(a, b) {
		t.Error("equal MVs reported unequal")
	}
	if Equal(a, c) {
		t.Error("unequal MVs reported equal")
	}
	if Equal(Scalar("x", 2), Scalar("x", 3)) {
		t.Error("different widths reported equal")
	}
	if !Equal(Scalar("x", 2), FromVals([]value.V{"x", "x"})) {
		t.Error("collapsed and equivalent expanded should be equal")
	}
}

func TestSelect(t *testing.T) {
	m := FromVals([]value.V{"a", "b", "c"})
	s := m.Select([]int{2, 0})
	if s.Width() != 2 || s.At(0) != "c" || s.At(1) != "a" {
		t.Errorf("Select = %v", s)
	}
	col := Scalar("k", 5).Select([]int{1, 3})
	if !col.Collapsed() || col.Width() != 2 {
		t.Error("Select of collapsed should stay collapsed")
	}
}

func TestClone(t *testing.T) {
	m := FromVals([]value.V{value.Map("k", 1), value.Map("k", 2)})
	cl := m.Clone()
	cl.At(0).(map[string]value.V)["k"] = float64(9)
	if m.At(0).(map[string]value.V)["k"] != float64(1) {
		t.Error("Clone shares storage with original")
	}
}

func TestString(t *testing.T) {
	if s := Scalar("x", 2).String(); s == "" {
		t.Error("empty String for collapsed MV")
	}
	if s := FromVals([]value.V{"a", "b"}).String(); s == "" {
		t.Error("empty String for expanded MV")
	}
}

func TestQuickFromValsPreservesEntries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		vals := make([]value.V, n)
		for i := range vals {
			vals[i] = float64(r.Intn(3))
		}
		m := FromVals(vals)
		for i := range vals {
			if !value.Equal(m.At(i), vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickApplyMatchesElementwise(t *testing.T) {
	// Apply must equal the naive per-element computation regardless of
	// collapse state.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := make([]value.V, n)
		b := make([]value.V, n)
		for i := range a {
			a[i] = float64(r.Intn(2))
			b[i] = float64(r.Intn(2))
		}
		sum := func(args []value.V) value.V { return args[0].(float64)*10 + args[1].(float64) }
		got := Apply(sum, FromVals(a), FromVals(b))
		for i := range a {
			want := a[i].(float64)*10 + b[i].(float64)
			if got.At(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
