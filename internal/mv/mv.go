// Package mv implements multivalues, the datatype behind SIMD-on-demand
// re-execution (paper §2.3, §4.1, §5).
//
// A multivalue carries one logical value per request in a re-execution group.
// When every entry is equal the multivalue is stored collapsed — a single
// value plus a width — and any computation over it executes once for the
// whole group. When entries differ, the multivalue expands into a vector and
// computation runs per entry. The Karousos verifier re-executes an entire
// control-flow group through multivalues; the server runs the same
// application code through width-1 multivalues, so the program text is
// identical in both roles (the paper achieves the same sharing with its
// transpiler).
//
// Concurrency: immutability is also what makes the parallel audit engine
// safe. Worker goroutines replaying different tag groups share MVs freely
// (frozen @init state, advice-supplied values) because no operation mutates
// a constructed MV; the only shared mutable state in a parallel audit lives
// in the verifier's effect buffers, which are worker-private until merged
// (DESIGN.md §13).
package mv

import (
	"fmt"

	"karousos.dev/karousos/internal/value"
)

// MV is a multivalue of fixed width. The zero value is invalid; construct
// with Scalar or FromVals. MVs are immutable once constructed: all operations
// return new MVs, which is what lets the verifier keep MVs inside variable
// dictionaries and logs without defensive copying.
type MV struct {
	width     int
	collapsed bool
	single    value.V // valid when collapsed
	vals      []value.V
}

// Scalar returns a collapsed multivalue of the given width whose every entry
// is v. The entry must already be canonical (value.Normalize form): the
// runtimes construct multivalues on every operation, and normalizing big maps
// there would dominate audit time. Application helpers (value.Map/List,
// appkit) produce canonical values; a stray raw int fails loudly in
// value.Equal during replay.
func Scalar(v value.V, width int) *MV {
	if width <= 0 {
		panic("mv: non-positive width")
	}
	return &MV{width: width, collapsed: true, single: v}
}

// FromVals builds a multivalue from one entry per group member, collapsing it
// if all entries are equal. Entries must already be canonical; see Scalar.
func FromVals(vals []value.V) *MV {
	if len(vals) == 0 {
		panic("mv: empty value vector")
	}
	allEq := true
	for i := 1; i < len(vals); i++ {
		if !value.Equal(vals[0], vals[i]) {
			allEq = false
			break
		}
	}
	if allEq {
		return &MV{width: len(vals), collapsed: true, single: vals[0]}
	}
	return &MV{width: len(vals), vals: vals}
}

// Width returns the number of group members this multivalue spans.
func (m *MV) Width() int { return m.width }

// Collapsed reports whether all entries are equal and stored once.
func (m *MV) Collapsed() bool { return m.collapsed }

// At returns the entry for group member i.
func (m *MV) At(i int) value.V {
	if i < 0 || i >= m.width {
		panic(fmt.Sprintf("mv: index %d out of range (width %d)", i, m.width))
	}
	if m.collapsed {
		return m.single
	}
	return m.vals[i]
}

// All returns a fresh slice with one entry per group member.
func (m *MV) All() []value.V {
	out := make([]value.V, m.width)
	for i := range out {
		out[i] = m.At(i)
	}
	return out
}

// Single returns the collapsed value and true iff the multivalue is
// collapsed. Group-wide control decisions (branches, emitted event names)
// must go through Single: a false return means the group diverges and the
// verifier rejects.
func (m *MV) Single() (value.V, bool) {
	if m.collapsed {
		return m.single, true
	}
	return nil, false
}

// Bool interprets a collapsed multivalue as a branch condition. The second
// result is false if the multivalue is not collapsed or not boolean.
func (m *MV) Bool() (bool, bool) {
	v, ok := m.Single()
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// Equal reports whether two multivalues have the same width and equal entries
// position by position.
func Equal(a, b *MV) bool {
	if a.width != b.width {
		return false
	}
	if a.collapsed && b.collapsed {
		return value.Equal(a.single, b.single)
	}
	for i := 0; i < a.width; i++ {
		if !value.Equal(a.At(i), b.At(i)) {
			return false
		}
	}
	return true
}

// Apply is SIMD-on-demand computation: it applies f position-wise across the
// arguments. If every argument is collapsed, f runs exactly once and the
// result is collapsed — this single-execution path is where batched
// re-execution gets its speedup. Otherwise f runs once per group member and
// the result re-collapses if the outputs happen to agree.
//
// f must be deterministic and must not capture mutable state; it models a
// pure fragment of application code between special operations.
func Apply(f func(args []value.V) value.V, ms ...*MV) *MV {
	if len(ms) == 0 {
		panic("mv: Apply with no arguments")
	}
	width := ms[0].width
	allCollapsed := true
	for _, m := range ms {
		if m.width != width {
			panic(fmt.Sprintf("mv: width mismatch %d vs %d", m.width, width))
		}
		if !m.collapsed {
			allCollapsed = false
		}
	}
	args := make([]value.V, len(ms))
	if allCollapsed {
		for j, m := range ms {
			args[j] = m.single
		}
		return Scalar(f(args), width)
	}
	out := make([]value.V, width)
	for i := 0; i < width; i++ {
		for j, m := range ms {
			args[j] = m.At(i)
		}
		out[i] = f(args)
	}
	return FromVals(out)
}

// Select projects a multivalue onto a subset of its positions, preserving
// collapse when possible. The verifier uses it when a group's emit payload
// must be narrowed (it never is in valid advice, but the helper keeps the
// invariant handling in one place).
func (m *MV) Select(idx []int) *MV {
	if m.collapsed {
		return &MV{width: len(idx), collapsed: true, single: m.single}
	}
	out := make([]value.V, len(idx))
	for i, j := range idx {
		out[i] = m.At(j)
	}
	return FromVals(out)
}

// Clone returns a deep copy of the multivalue, including deep copies of the
// underlying values.
func (m *MV) Clone() *MV {
	if m.collapsed {
		return &MV{width: m.width, collapsed: true, single: value.Clone(m.single)}
	}
	vals := make([]value.V, m.width)
	for i := range vals {
		vals[i] = value.Clone(m.vals[i])
	}
	return &MV{width: m.width, vals: vals}
}

// String renders the multivalue for diagnostics.
func (m *MV) String() string {
	if m.collapsed {
		return fmt.Sprintf("mv(%d)⟨%s⟩", m.width, value.String(m.single))
	}
	s := fmt.Sprintf("mv(%d)[", m.width)
	for i, v := range m.vals {
		if i > 0 {
			s += ", "
		}
		s += value.String(v)
	}
	return s + "]"
}
