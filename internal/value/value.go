// Package value defines the dynamic value domain that flows through a KEM
// program: request payloads, variable contents, event payloads, transactional
// rows, and responses.
//
// The domain deliberately mirrors JSON (the paper's applications are
// JavaScript): nil, bool, float64 (the only numeric kind, as in JavaScript),
// string, []V, and map[string]V. Keeping the domain JSON-native means advice
// round-trips through serialization without changing type, which matters
// because the verifier compares replayed values byte-for-byte.
// Values must be deeply comparable and deterministically digestible, because
// the Karousos server computes control-flow tags and handler IDs from value
// digests, and the verifier compares re-executed outputs byte-for-byte
// against the trace.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// V is a dynamic value. Only the JSON-like kinds listed in the package
// comment are supported; Normalize coerces every Go numeric type into
// float64 so that equality and digests are representation-independent and
// JSON round-trips are exact.
type V = any

// Normalize maps the supported Go representations onto the canonical domain:
// every numeric type becomes float64 (JavaScript semantics), and slices/maps
// are normalized recursively. It returns the input unchanged (no allocation)
// when it is already canonical — the overwhelmingly common case on the
// verifier's hot path — and panics on unsupported kinds, because an
// unsupported value indicates an application bug rather than a recoverable
// condition.
func Normalize(v V) V {
	if isCanonical(v) {
		return v
	}
	return normalizeSlow(v)
}

// isCanonical reports whether v is already entirely in the canonical domain.
func isCanonical(v V) bool {
	switch x := v.(type) {
	case nil, bool, float64, string:
		return true
	case []V:
		for _, e := range x {
			if !isCanonical(e) {
				return false
			}
		}
		return true
	case map[string]V:
		for _, e := range x {
			if !isCanonical(e) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func normalizeSlow(v V) V {
	switch x := v.(type) {
	case nil, bool, float64, string:
		return x
	case int:
		return float64(x)
	case int8:
		return float64(x)
	case int16:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint:
		return float64(x)
	case uint8:
		return float64(x)
	case uint16:
		return float64(x)
	case uint32:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case []V:
		out := make([]V, len(x))
		for i, e := range x {
			out[i] = Normalize(e)
		}
		return out
	case map[string]V:
		out := make(map[string]V, len(x))
		for k, e := range x {
			out[k] = Normalize(e)
		}
		return out
	default:
		panic(fmt.Sprintf("value: unsupported kind %T", v))
	}
}

// Equal reports deep equality of two canonical values. Callers should
// Normalize first.
func Equal(a, b V) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case []V:
		y, ok := b.([]V)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]V:
		y, ok := b.(map[string]V)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !Equal(v, w) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("value: unsupported kind %T", a))
	}
}

// Clone returns a deep copy of v. The server and verifier clone values at
// every logging and dictionary boundary so that later in-place mutation by
// application code cannot retroactively change recorded history.
func Clone(v V) V {
	switch x := v.(type) {
	case nil, bool, float64, string:
		return x
	case []V:
		out := make([]V, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	case map[string]V:
		out := make(map[string]V, len(x))
		for k, e := range x {
			out[k] = Clone(e)
		}
		return out
	default:
		panic(fmt.Sprintf("value: unsupported kind %T", v))
	}
}

// Encode appends a canonical, self-delimiting encoding of v to dst. Map keys
// are emitted in sorted order, so the encoding (and therefore Digest) is
// deterministic across runs and processes.
func Encode(dst []byte, v V) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, 'n')
	case bool:
		if x {
			return append(dst, 't')
		}
		return append(dst, 'f')
	case float64:
		dst = append(dst, 'd')
		dst = strconv.AppendUint(dst, math.Float64bits(x), 16)
		return append(dst, ';')
	case string:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(x)), 10)
		dst = append(dst, ':')
		return append(dst, x...)
	case []V:
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(len(x)), 10)
		dst = append(dst, ':')
		for _, e := range x {
			dst = Encode(dst, e)
		}
		return append(dst, ']')
	case map[string]V:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = append(dst, '{')
		dst = strconv.AppendInt(dst, int64(len(x)), 10)
		dst = append(dst, ':')
		for _, k := range keys {
			dst = Encode(dst, k)
			dst = Encode(dst, x[k])
		}
		return append(dst, '}')
	default:
		panic(fmt.Sprintf("value: unsupported kind %T", v))
	}
}

// Digest returns a 64-bit FNV-1a digest of the canonical encoding of v.
// Digests feed handler IDs, control-flow digests, and request tags (§5 of the
// paper); they need to be deterministic and fast, not cryptographic — the
// audit's soundness never depends on digest collision resistance, only its
// batching efficiency does.
func Digest(v V) uint64 {
	h := fnv.New64a()
	h.Write(Encode(nil, v))
	return h.Sum64()
}

// DigestString returns Digest(v) formatted as fixed-width hex, convenient as
// a map key or identifier component.
func DigestString(v V) string {
	return fmt.Sprintf("%016x", Digest(v))
}

// String renders v compactly for error messages and debugging output.
func String(v V) string {
	var b strings.Builder
	writeString(&b, v)
	return b.String()
}

func writeString(b *strings.Builder, v V) {
	switch x := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		fmt.Fprintf(b, "%t", x)
	case float64:
		fmt.Fprintf(b, "%g", x)
	case string:
		fmt.Fprintf(b, "%q", x)
	case []V:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			writeString(b, e)
		}
		b.WriteByte(']')
	case map[string]V:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%q:", k)
			writeString(b, x[k])
		}
		b.WriteByte('}')
	default:
		fmt.Fprintf(b, "<%T>", v)
	}
}

// Map is shorthand for building a map value literal.
func Map(kv ...V) map[string]V {
	if len(kv)%2 != 0 {
		panic("value.Map: odd number of arguments")
	}
	m := make(map[string]V, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic("value.Map: non-string key")
		}
		m[k] = Normalize(kv[i+1])
	}
	return m
}

// List is shorthand for building a list value literal.
func List(elems ...V) []V {
	out := make([]V, len(elems))
	for i, e := range elems {
		out[i] = Normalize(e)
	}
	return out
}
