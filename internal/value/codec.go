package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file implements the canonical binary encoding of values. It is the
// single wire form shared by the advice codec (internal/advice) and the
// epoch log's trace segments (internal/epochlog): one encoding means the
// trace digest recorded in an epoch manifest can be recomputed from segment
// payloads byte-for-byte, and the advice codec's hostile-input hardening
// (length clamps) protects every consumer.
//
// The format is tag bytes, unsigned varints, explicit lengths. Maps encode
// in sorted key order, so Equal values encode to equal bytes. The decoder
// treats its input as untrusted: every declared length is clamped against
// the remaining input divided by the element's minimum wire size, so a few
// declared bytes cannot preallocate hundreds of megabytes.

// Value tags of the canonical binary encoding.
const (
	tagNil   byte = 0
	tagFalse byte = 1
	tagTrue  byte = 2
	tagNum   byte = 3
	tagStr   byte = 4
	tagList  byte = 5
	tagMap   byte = 6
)

// AppendBinary appends the canonical binary encoding of v to dst and
// returns the extended slice. v must be canonical (see Normalize); an
// unencodable kind panics, as it can only arise from a bug in our own
// runtime, never from untrusted input.
func AppendBinary(dst []byte, v V) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil)
	case bool:
		if x {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case float64:
		dst = append(dst, tagNum)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	case string:
		dst = append(dst, tagStr)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case []V:
		dst = append(dst, tagList)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, el := range x {
			dst = AppendBinary(dst, el)
		}
		return dst
	case map[string]V:
		dst = append(dst, tagMap)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst = AppendBinary(dst, x[k])
		}
		return dst
	default:
		panic(fmt.Sprintf("value: unencodable value kind %T", v))
	}
}

// ErrTruncated is returned when the decoder runs out of input.
var ErrTruncated = errors.New("value: truncated input")

// DecodeBinary decodes one canonically-encoded value from the front of buf,
// returning the value and the number of bytes consumed. Trailing bytes are
// the caller's concern.
func DecodeBinary(buf []byte) (V, int, error) {
	d := &binDecoder{buf: buf}
	v, err := d.value()
	if err != nil {
		return nil, 0, err
	}
	return v, d.off, nil
}

type binDecoder struct {
	buf []byte
	off int
}

func (d *binDecoder) byteAt() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *binDecoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return x, nil
}

// lengthElems reads a collection length whose elements each encode to at
// least minElemSize bytes and clamps the declared count against the
// remaining input, keeping decode-side allocation proportional to input.
func (d *binDecoder) lengthElems(minElemSize int) (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(len(d.buf)-d.off)/uint64(minElemSize) {
		return 0, fmt.Errorf("value: declared length %d exceeds remaining input", x)
	}
	return int(x), nil
}

func (d *binDecoder) str() (string, error) {
	n, err := d.lengthElems(1)
	if err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *binDecoder) value() (V, error) {
	tag, err := d.byteAt()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagNum:
		if len(d.buf)-d.off < 8 {
			return nil, ErrTruncated
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return math.Float64frombits(bits), nil
	case tagStr:
		return d.str()
	case tagList:
		n, err := d.lengthElems(1)
		if err != nil {
			return nil, err
		}
		out := make([]V, n)
		for i := range out {
			if out[i], err = d.value(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMap:
		// A key is at least its length varint; a value at least its tag.
		n, err := d.lengthElems(2)
		if err != nil {
			return nil, err
		}
		out := make(map[string]V, n)
		for i := 0; i < n; i++ {
			k, err := d.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = d.value(); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("value: unknown value tag %d", tag)
	}
}
