package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalizeNumericKinds(t *testing.T) {
	cases := []struct {
		in   V
		want float64
	}{
		{int(3), 3},
		{int8(-4), -4},
		{int16(500), 500},
		{int32(1 << 20), 1 << 20},
		{int64(-9), -9},
		{uint(7), 7},
		{uint8(255), 255},
		{uint16(65535), 65535},
		{uint32(1 << 30), 1 << 30},
		{uint64(1 << 40), 1 << 40},
		{float32(1.5), 1.5},
		{float64(2.25), 2.25},
	}
	for _, c := range cases {
		got := Normalize(c.in)
		if f, ok := got.(float64); !ok || f != c.want {
			t.Errorf("Normalize(%T %v) = %v, want float64 %v", c.in, c.in, got, c.want)
		}
	}
}

func TestNormalizeRecursive(t *testing.T) {
	in := map[string]V{
		"a": int(1),
		"b": []V{int32(2), "x", map[string]V{"c": uint8(3)}},
	}
	got := Normalize(in).(map[string]V)
	if got["a"] != float64(1) {
		t.Errorf("a = %v", got["a"])
	}
	lst := got["b"].([]V)
	if lst[0] != float64(2) {
		t.Errorf("b[0] = %v", lst[0])
	}
	inner := lst[2].(map[string]V)
	if inner["c"] != float64(3) {
		t.Errorf("b[2].c = %v", inner["c"])
	}
}

func TestNormalizeCanonicalReturnsSameReference(t *testing.T) {
	m := Map("k", "v", "n", 1)
	got := Normalize(m)
	if reflect.ValueOf(got).Pointer() != reflect.ValueOf(m).Pointer() {
		t.Error("Normalize of canonical map should return the same map, not a copy")
	}
	l := List(1, "a", nil)
	got2 := Normalize(l)
	if reflect.ValueOf(got2).Pointer() != reflect.ValueOf(l).Pointer() {
		t.Error("Normalize of canonical list should return the same slice")
	}
}

func TestNormalizeUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize of a chan should panic")
		}
	}()
	Normalize(make(chan int))
}

func TestEqualBasics(t *testing.T) {
	eq := []struct{ a, b V }{
		{nil, nil},
		{true, true},
		{float64(1), float64(1)},
		{"x", "x"},
		{List(1, 2), List(1, 2)},
		{Map("a", 1, "b", List("x")), Map("b", List("x"), "a", 1)},
	}
	for _, c := range eq {
		if !Equal(c.a, c.b) {
			t.Errorf("Equal(%v, %v) = false, want true", c.a, c.b)
		}
	}
	ne := []struct{ a, b V }{
		{nil, false},
		{true, false},
		{float64(1), float64(2)},
		{float64(1), "1"},
		{"x", "y"},
		{List(1), List(1, 2)},
		{List(1, 2), List(2, 1)},
		{Map("a", 1), Map("a", 2)},
		{Map("a", 1), Map("b", 1)},
		{Map("a", 1), Map("a", 1, "b", 2)},
	}
	for _, c := range ne {
		if Equal(c.a, c.b) {
			t.Errorf("Equal(%v, %v) = true, want false", c.a, c.b)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Map("list", List(1, 2), "m", Map("k", "v"))
	cl := Clone(orig).(map[string]V)
	if !Equal(orig, cl) {
		t.Fatal("clone not equal to original")
	}
	cl["m"].(map[string]V)["k"] = "changed"
	cl["list"].([]V)[0] = float64(99)
	if orig["m"].(map[string]V)["k"] != "v" {
		t.Error("mutating clone's nested map changed the original")
	}
	if orig["list"].([]V)[0] != float64(1) {
		t.Error("mutating clone's nested list changed the original")
	}
}

func TestEncodeDeterministicMapOrder(t *testing.T) {
	// Build the same map with different insertion orders; the encoding must
	// be identical because Digest feeds tags and handler ids.
	m1 := map[string]V{}
	m2 := map[string]V{}
	keys := []string{"z", "a", "m", "q", "b"}
	for _, k := range keys {
		m1[k] = k + "!"
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = keys[i] + "!"
	}
	if string(Encode(nil, m1)) != string(Encode(nil, m2)) {
		t.Error("encodings of equal maps differ")
	}
}

func TestEncodeDistinguishesKinds(t *testing.T) {
	// Values that print the same must still encode differently.
	pairs := [][2]V{
		{"1", float64(1)},
		{nil, "null"},
		{true, "true"},
		{List(), Map()},
		{List("ab"), List("a", "b")},
	}
	for _, p := range pairs {
		if string(Encode(nil, p[0])) == string(Encode(nil, p[1])) {
			t.Errorf("Encode(%v) == Encode(%v)", p[0], p[1])
		}
	}
}

func TestDigestStable(t *testing.T) {
	v := Map("op", "get", "day", "mon", "n", 3.5)
	d1, d2 := Digest(v), Digest(Clone(v))
	if d1 != d2 {
		t.Error("digest of clone differs")
	}
	if DigestString(v) != DigestString(v) {
		t.Error("DigestString unstable")
	}
	if len(DigestString(v)) != 16 {
		t.Errorf("DigestString length = %d, want 16", len(DigestString(v)))
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   V
		want string
	}{
		{nil, "null"},
		{true, "true"},
		{float64(3), "3"},
		{"hi", `"hi"`},
		{List(1, "a"), `[1,"a"]`},
		{Map("b", 2, "a", 1), `{"a":1,"b":2}`},
	}
	for _, c := range cases {
		if got := String(c.in); got != c.want {
			t.Errorf("String(%v) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestMapListHelpers(t *testing.T) {
	m := Map("n", 1, "s", "x")
	if m["n"] != float64(1) {
		t.Error("Map did not normalize int")
	}
	l := List(int8(2))
	if l[0] != float64(2) {
		t.Error("List did not normalize int8")
	}
	defer func() {
		if recover() == nil {
			t.Error("Map with odd args should panic")
		}
	}()
	Map("only-key")
}

func TestMapNonStringKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Map with non-string key should panic")
		}
	}()
	Map(1, "v")
}

// randomValue generates an arbitrary canonical value of bounded depth for
// property tests.
func randomValue(r *rand.Rand, depth int) V {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return math.Trunc(r.Float64()*1000) / 4
		default:
			return string(rune('a' + r.Intn(26)))
		}
	}
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return float64(r.Intn(100))
	case 3:
		return string(rune('a' + r.Intn(26)))
	case 4:
		n := r.Intn(4)
		l := make([]V, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return l
	default:
		n := r.Intn(4)
		m := make(map[string]V, n)
		for i := 0; i < n; i++ {
			m[string(rune('a'+r.Intn(26)))] = randomValue(r, depth-1)
		}
		return m
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		return Equal(v, Clone(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesEqualDigest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		w := Clone(v)
		return Digest(v) == Digest(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		return Equal(Normalize(v), Normalize(Normalize(v)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeInjectiveOnSamples(t *testing.T) {
	// Distinct values (as per Equal) must encode distinctly; sample pairs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomValue(r, 2)
		b := randomValue(r, 2)
		ea, eb := string(Encode(nil, a)), string(Encode(nil, b))
		if Equal(a, b) {
			return ea == eb
		}
		return ea != eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
