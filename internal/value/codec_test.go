package value

import (
	"encoding/binary"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := []V{
		nil,
		true,
		false,
		float64(0),
		float64(-3.75),
		"",
		"hello",
		List(),
		List(float64(1), "two", nil, true),
		Map(),
		Map("b", float64(2), "a", List("x", Map("deep", nil))),
	}
	for i, v := range cases {
		enc := AppendBinary(nil, v)
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if !Equal(got, v) {
			t.Fatalf("case %d: round trip mismatch: %v vs %v", i, got, v)
		}
	}
}

func TestBinaryDeterministicMapOrder(t *testing.T) {
	a := AppendBinary(nil, Map("x", float64(1), "y", float64(2), "z", float64(3)))
	b := AppendBinary(nil, Map("z", float64(3), "y", float64(2), "x", float64(1)))
	if string(a) != string(b) {
		t.Error("equal maps encode to different bytes")
	}
}

func TestBinaryRejectsHostileLengths(t *testing.T) {
	// A declared list length far beyond the input must error, not allocate.
	hostile := []byte{5}
	hostile = binary.AppendUvarint(hostile, 1<<40)
	if _, _, err := DecodeBinary(hostile); err == nil {
		t.Error("inflated list length accepted")
	}
	// Same for maps and strings.
	hostile = []byte{6}
	hostile = binary.AppendUvarint(hostile, 1<<40)
	if _, _, err := DecodeBinary(hostile); err == nil {
		t.Error("inflated map length accepted")
	}
	hostile = []byte{4}
	hostile = binary.AppendUvarint(hostile, 1<<40)
	if _, _, err := DecodeBinary(hostile); err == nil {
		t.Error("inflated string length accepted")
	}
	// Truncations at every prefix error rather than panic.
	full := AppendBinary(nil, Map("k", List("a", float64(1), true)))
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeBinary(full[:i]); err == nil {
			t.Fatalf("prefix of %d bytes accepted", i)
		}
	}
	if _, _, err := DecodeBinary([]byte{42}); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestAppendBinaryPanicsOnUnencodable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unencodable kind")
		}
	}()
	AppendBinary(nil, struct{}{})
}
