package netfault

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper so every round trip consults the
// fault schedule. base nil means http.DefaultTransport. The match target
// is "host/path", so ArmSpec's targetContains can pin a fault to one
// backend (by host:port) or one route (by path).
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{in: in, base: base}
}

type faultTransport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host + req.URL.Path
	a := t.in.fault(CallRequest, target)
	if a == nil {
		return t.base.RoundTrip(req)
	}
	switch a.name {
	case OpConnRefused, OpFlap:
		// Refused at dial: the request body was never read, no byte
		// reached the peer. Close the body ourselves per the
		// RoundTripper contract.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errFor(a, CallRequest, target)
	case OpConnReset:
		// The worst case for retry safety: forward the request so the
		// peer really executes it, then lose the response to a reset.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errFor(a, CallRequest, target)
	case OpBlackhole:
		// A partitioned link: the request vanishes (never forwarded —
		// mid-flight drops are conn-reset's job) and the caller stalls
		// until its deadline or the injector's cap.
		if req.Body != nil {
			req.Body.Close()
		}
		stall(req.Context(), t.in.maxBlock())
		return nil, errFor(a, CallRequest, target)
	case OpSlowResponse:
		stall(req.Context(), t.in.slowFor(a))
		return t.base.RoundTrip(req)
	case OpPartialBody:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateBody(resp, errFor(a, CallRequest, target)), nil
	}
	return t.base.RoundTrip(req)
}

// stall blocks for d or until ctx is done, whichever is sooner.
func stall(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// truncateBody delivers roughly half the response body, then fails the
// read with the injected error — a connection dying mid-transfer after
// the status line already committed the client to this response.
func truncateBody(resp *http.Response, ferr *FaultError) *http.Response {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) == 0 {
		resp.Body = &truncatedBody{err: ferr}
		resp.ContentLength = -1
		return resp
	}
	resp.Body = &truncatedBody{r: bytes.NewReader(body[:len(body)/2]), err: ferr}
	resp.ContentLength = -1
	return resp
}

type truncatedBody struct {
	r   *bytes.Reader
	err error
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.r != nil {
		n, err := b.r.Read(p)
		if err == nil {
			return n, nil
		}
		if n > 0 {
			return n, nil
		}
	}
	return 0, b.err
}

func (b *truncatedBody) Close() error { return nil }
