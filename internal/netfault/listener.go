package netfault

import (
	"net"
	"sync"
	"time"
)

// Listener wraps a net.Listener so accepted connections consult the fault
// schedule — the server-side plug point: a collector serving through a
// faulted listener exhibits resets, stalls, and dropped connections to
// every client without either side's code changing. The match target is
// the remote address.
func (in *Injector) Listener(base net.Listener) net.Listener {
	return &faultListener{in: in, base: base}
}

type faultListener struct {
	in   *Injector
	base net.Listener
}

func (l *faultListener) Addr() net.Addr { return l.base.Addr() }
func (l *faultListener) Close() error   { return l.base.Close() }

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.base.Accept()
	if err != nil {
		return nil, err
	}
	a := l.in.fault(CallAccept, conn.RemoteAddr().String())
	if a == nil {
		return conn, nil
	}
	switch a.name {
	case OpConnRefused, OpFlap:
		// Close before reading a byte: the client sees a reset/EOF on a
		// connection the handler never observed.
		conn.Close()
		return l.Accept()
	case OpConnReset:
		// Let the request arrive, then cut the line before the response:
		// read-side passthrough, write-side reset.
		return &resetConn{Conn: conn}, nil
	case OpBlackhole:
		// Swallow the connection: reads and writes stall until the cap.
		return &blackholeConn{Conn: conn, cap: l.in.maxBlock()}, nil
	case OpSlowResponse:
		return &slowConn{Conn: conn, delay: l.in.slowFor(a)}, nil
	case OpPartialBody:
		// Allow a sliver of the response out, then reset.
		return &resetConn{Conn: conn, allow: 64}, nil
	}
	return conn, nil
}

// resetConn passes reads through and resets writes after allow bytes
// (0 = reset immediately), so the handler executes but the client loses
// the response.
type resetConn struct {
	net.Conn
	allow   int
	written int
}

func (c *resetConn) Write(p []byte) (int, error) {
	if c.written >= c.allow {
		c.Conn.Close()
		return 0, &FaultError{Op: OpConnReset, Call: CallAccept, Target: c.RemoteAddr().String(), Forwarded: true, Err: net.ErrClosed}
	}
	n := len(p)
	if c.written+n > c.allow {
		n = c.allow - c.written
	}
	n, err := c.Conn.Write(p[:n])
	c.written += n
	if err != nil {
		return n, err
	}
	if c.written >= c.allow {
		c.Conn.Close()
	}
	return n, nil
}

// blackholeConn stalls the first read or write for the cap, then closes —
// the server-side view of a partition. once guards the stall because the
// http.Server reads in a background goroutine while the handler writes.
type blackholeConn struct {
	net.Conn
	cap  time.Duration
	once sync.Once
}

func (c *blackholeConn) stall() {
	c.once.Do(func() {
		time.Sleep(c.cap)
		c.Conn.Close()
	})
}

func (c *blackholeConn) Read(p []byte) (int, error) {
	c.stall()
	return 0, net.ErrClosed
}

func (c *blackholeConn) Write(p []byte) (int, error) {
	c.stall()
	return 0, net.ErrClosed
}

// slowConn delays the first write (the response head), then passes
// through.
type slowConn struct {
	net.Conn
	delay   time.Duration
	delayed bool
}

func (c *slowConn) Write(p []byte) (int, error) {
	if !c.delayed {
		c.delayed = true
		time.Sleep(c.delay)
	}
	return c.Conn.Write(p)
}
