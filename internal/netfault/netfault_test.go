package netfault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func newBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "payload-payload-payload-payload")
	}))
	t.Cleanup(s.Close)
	return s
}

func clientVia(in *Injector, timeout time.Duration) *http.Client {
	return &http.Client{Transport: in.Transport(nil), Timeout: timeout}
}

func TestParseSpec(t *testing.T) {
	name, cfg, err := ParseSpec("conn-refused:7:3")
	if err != nil || name != OpConnRefused || cfg.Seed != 7 || cfg.Times != 3 {
		t.Fatalf("ParseSpec: name=%q cfg=%+v err=%v", name, cfg, err)
	}
	if _, _, err := ParseSpec("no-such-op"); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if _, _, err := ParseSpec("blackhole:x"); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, _, err := ParseSpec("flap:1:2:3"); err == nil {
		t.Fatal("overlong spec accepted")
	}
}

func TestConnRefusedNeverForwards(t *testing.T) {
	var hits atomic.Int64
	backend := newBackend(t, &hits)
	in := NewInjector()
	if err := in.Arm(OpConnRefused, ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	c := clientVia(in, time.Second)
	_, err := c.Post(backend.URL, "text/plain", strings.NewReader("body"))
	if err == nil {
		t.Fatal("want injected refusal")
	}
	if got := Classify(err); got != ClassRetryable {
		t.Fatalf("Classify = %v, want retryable", got)
	}
	if hits.Load() != 0 {
		t.Fatalf("backend saw %d requests through a refused dial", hits.Load())
	}
	// Healed schedule: next request passes.
	resp, err := c.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("hits = %d after recovery", hits.Load())
	}
}

func TestConnResetForwardsThenFails(t *testing.T) {
	var hits atomic.Int64
	backend := newBackend(t, &hits)
	in := NewInjector()
	if err := in.ArmSpec("conn-reset", ""); err != nil {
		t.Fatal(err)
	}
	_, err := clientVia(in, time.Second).Post(backend.URL, "text/plain", strings.NewReader("body"))
	if err == nil {
		t.Fatal("want injected reset")
	}
	if got := Classify(err); got != ClassAmbiguous {
		t.Fatalf("Classify = %v, want ambiguous: the peer executed the request", got)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d: conn-reset must forward before failing", hits.Load())
	}
}

func TestBlackholeRespectsDeadlineAndCap(t *testing.T) {
	var hits atomic.Int64
	backend := newBackend(t, &hits)
	in := NewInjector()
	in.MaxBlock = 40 * time.Millisecond
	if err := in.ArmSpec("blackhole::1", ""); err == nil {
		t.Fatal("empty seed field accepted")
	}
	if err := in.ArmSpec("blackhole:0:1", ""); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := clientVia(in, time.Second).Get(backend.URL)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want blackhole error")
	}
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Timeout() {
		t.Fatalf("blackhole error %v should look like a timeout", err)
	}
	if got := Classify(err); got != ClassAmbiguous {
		t.Fatalf("Classify = %v, want ambiguous", got)
	}
	if elapsed < 30*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("stalled %v, want ~MaxBlock", elapsed)
	}
	if hits.Load() != 0 {
		t.Fatal("blackhole forwarded the request")
	}

	// A sooner context deadline wins over MaxBlock.
	in2 := NewInjector()
	in2.MaxBlock = 5 * time.Second
	if err := in2.Arm(OpBlackhole, ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL, nil)
	start = time.Now()
	_, err = clientVia(in2, 0).Do(req)
	if err == nil {
		t.Fatal("want blackhole error")
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("context deadline ignored: stalled %v", e)
	}
}

func TestPartialBodyTruncates(t *testing.T) {
	backend := newBackend(t, nil)
	in := NewInjector()
	if err := in.Arm(OpPartialBody, ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := clientVia(in, time.Second).Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("full body %q delivered through partial-body", body)
	}
	if got := Classify(err); got != ClassAmbiguous {
		t.Fatalf("Classify = %v, want ambiguous", got)
	}
	if len(body) == 0 || len(body) >= len("payload-payload-payload-payload") {
		t.Fatalf("got %d body bytes, want a strict prefix", len(body))
	}
}

func TestFlapDeterministicSchedule(t *testing.T) {
	schedule := func() []bool {
		backend := newBackend(t, nil)
		in := NewInjector()
		if err := in.ArmSpec("flap:23", ""); err != nil {
			t.Fatal(err)
		}
		c := clientVia(in, time.Second)
		var out []bool
		for i := 0; i < 40; i++ {
			resp, err := c.Get(backend.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := schedule(), schedule()
	var pass, fail int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: same seed must fire identically", i)
		}
		if a[i] {
			pass++
		} else {
			fail++
		}
	}
	if pass == 0 || fail == 0 {
		t.Fatalf("flap should mix passes and failures, got pass=%d fail=%d", pass, fail)
	}
}

func TestTargetFilterAndHealTarget(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	backendA := newBackend(t, &hitsA)
	backendB := newBackend(t, &hitsB)
	hostA := strings.TrimPrefix(backendA.URL, "http://")
	in := NewInjector()
	if err := in.ArmSpec("conn-refused:0:-1", hostA); err != nil {
		t.Fatal(err)
	}
	c := clientVia(in, time.Second)
	if _, err := c.Get(backendA.URL); err == nil {
		t.Fatal("filtered target not faulted")
	}
	resp, err := c.Get(backendB.URL)
	if err != nil {
		t.Fatalf("unfiltered target faulted: %v", err)
	}
	resp.Body.Close()
	in.HealTarget(hostA)
	resp, err = c.Get(backendA.URL)
	if err != nil {
		t.Fatalf("healed target still faulted: %v", err)
	}
	resp.Body.Close()
	if fired := in.Fired()[OpConnRefused]; fired != 1 {
		t.Fatalf("Fired[conn-refused] = %d after heal, want 1", fired)
	}
}

func TestListenerFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	in := NewInjector()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, strings.Repeat("x", 4096))
	})}
	go srv.Serve(in.Listener(ln))
	t.Cleanup(func() { srv.Close() })
	url := "http://" + ln.Addr().String()

	// conn-reset through the listener: the handler runs, the client loses
	// the response.
	if err := in.Arm(OpConnReset, ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	// Fresh client per probe: a pooled conn would dodge the next Accept.
	c := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := c.Get(url)
	if err == nil {
		// The reset may surface as a read error on the body instead.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("want reset through faulted listener")
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d: listener conn-reset must let the request through", hits.Load())
	}

	// Healed: normal service.
	resp, err = c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := in.Counts()[CallAccept]; got < 2 {
		t.Fatalf("Counts[accept] = %d, want >= 2", got)
	}
}

func TestClassifyLadder(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{syscall.ECONNREFUSED, ClassRetryable},
		{&net.OpError{Op: "dial", Err: errors.New("host unreachable")}, ClassRetryable},
		{&FaultError{Op: OpConnRefused, Err: syscall.ECONNREFUSED}, ClassRetryable},
		{&FaultError{Op: OpConnReset, Forwarded: true, Err: syscall.ECONNRESET}, ClassAmbiguous},
		{context.DeadlineExceeded, ClassAmbiguous},
		{io.ErrUnexpectedEOF, ClassAmbiguous},
		{errors.New("mystery"), ClassAmbiguous},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Attempts: 6,
		Rand: rand.New(rand.NewSource(1))}
	for i := 0; i < 8; i++ {
		d := b.Delay(i)
		if d < 5*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("Delay(%d) = %v out of [base/2, max]", i, d)
		}
	}
}
