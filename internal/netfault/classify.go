package netfault

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/url"
	"syscall"
	"time"
)

// Class buckets a network error by what the caller may soundly do next —
// the wire analogue of iofault.Classify. The question the ladder answers
// is not "will a retry work?" but "could the peer have executed the
// request?": a non-idempotent request may only be re-issued when the
// answer is provably no.
type Class int

const (
	// ClassNone: no error.
	ClassNone Class = iota
	// ClassRetryable: the request provably never reached the peer —
	// connection refused, dial failure, or an injected fault that did not
	// forward. Safe to retry anything.
	ClassRetryable
	// ClassAmbiguous: request bytes may have reached the peer — timeout,
	// reset after send, truncated response, or any error we cannot prove
	// otherwise. Retrying a non-idempotent request here risks duplicate
	// execution; only idempotent requests may be re-issued.
	ClassAmbiguous
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassRetryable:
		return "retryable"
	case ClassAmbiguous:
		return "ambiguous"
	}
	return "unknown"
}

// Classify places a round-trip error on the ladder. Unknown errors are
// ambiguous by default: when in doubt, assume the peer saw the request.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		if fe.Forwarded {
			return ClassAmbiguous
		}
		return ClassRetryable
	}
	// url.Error wraps every transport failure; unwrap before probing.
	var ue *url.Error
	if errors.As(err, &ue) {
		err = ue.Err
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return ClassRetryable
	}
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		// Dial never sends application bytes: a failed dial — refused,
		// unreachable, or timed out before connect — is always safe.
		return ClassRetryable
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return ClassAmbiguous
	}
	return ClassAmbiguous
}

// Backoff is a bounded exponential backoff with full jitter, mirroring
// iofault.Backoff for the wire: Base doubles per attempt up to Max, and
// each delay is drawn uniformly from [delay/2, delay] so synchronized
// retries de-correlate.
type Backoff struct {
	Base     time.Duration
	Max      time.Duration
	Attempts int
	// Sleep stubs time.Sleep in tests; nil means real sleep.
	Sleep func(time.Duration)
	// Rand supplies jitter; nil means a shared unseeded source. Scenarios
	// inject a seeded source for reproducible schedules.
	Rand *rand.Rand
}

// Delay returns the jittered delay for attempt i (0-based).
func (b Backoff) Delay(i int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = time.Second
	}
	delay := base << uint(i)
	if delay > max || delay <= 0 {
		delay = max
	}
	half := int64(delay / 2)
	var j int64
	if b.Rand != nil {
		j = b.Rand.Int63n(half + 1)
	} else {
		j = rand.Int63n(half + 1)
	}
	return time.Duration(half + j)
}

func (b Backoff) sleep(ctx context.Context, d time.Duration) error {
	if b.Sleep != nil {
		b.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
