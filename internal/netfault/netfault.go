// Package netfault is the pipeline's injectable network layer: the dual of
// internal/iofault for the wire instead of the disk. Where iofault breaks
// the filesystem underneath the trusted trace, netfault breaks the network
// path between the gateway and its shard collectors — connections refused,
// connections reset after the request left, blackholed links that swallow
// packets until a deadline fires, slow and truncated responses, and
// flapping links that alternate between refusing and passing.
//
// The operator catalogue mirrors iofault's "op:seed[:times]" spec grammar,
// and every armed operator fires on a deterministic schedule derived from
// its seed and the sequence of matching calls, so a partition scenario
// replayed with the same seed injects byte-identical fault histories.
//
// Two plug points cover both ends of an HTTP hop:
//
//   - Injector.Transport wraps an http.RoundTripper — the gateway's proxy
//     client threads every backend request through the schedule;
//   - Injector.Listener wraps a net.Listener — a collector's serve loop
//     accepts connections that reset, stall, or die mid-response.
//
// The invariant the chaos harness uses this package to enforce is the
// network restatement of iofault's: a network fault must never surface as
// a false accusation, a hang, or lost acknowledged evidence — it is
// retried when provably safe (no request bytes reached the peer), degraded
// around (503 + Retry-After, breaker open, epoch graded Unauditable), or
// surfaced loudly. The Classify ladder is what "provably safe" means: see
// Class.
package netfault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Call names one interception point; operators declare which calls they
// intercept, and the Injector counts every call by this name.
type Call string

const (
	// CallRequest is one whole client-side HTTP round trip (Transport).
	CallRequest Call = "request"
	// CallAccept is one accepted server-side connection (Listener).
	CallAccept Call = "accept"
)

// Operator names. Each models one network failure class.
const (
	// OpConnRefused fails the round trip before any request byte is sent
	// (dial refused); the accepted server-side connection is closed before
	// any byte is read. Provably safe to retry.
	OpConnRefused = "conn-refused"
	// OpConnReset forwards the request to the peer, then loses the
	// response to a reset — the dangerous half-failure: the peer may have
	// executed the request, the client cannot know. Never safe to retry a
	// non-idempotent request.
	OpConnReset = "conn-reset"
	// OpBlackhole swallows the request without forwarding it and blocks
	// until the caller's context deadline (or the injector's MaxBlock cap)
	// fires — a partitioned link dropping packets. The client sees a
	// timeout, which is ambiguous by definition.
	OpBlackhole = "blackhole"
	// OpSlowResponse delays the response without erroring — latency, the
	// hedging trigger.
	OpSlowResponse = "slow-response"
	// OpPartialBody delivers the response status and headers, then
	// truncates the body halfway — a connection dying mid-transfer.
	OpPartialBody = "partial-body"
	// OpFlap refuses like conn-refused but in seed-derived bursts with
	// clean gaps between them — a flapping link, the retry loop's natural
	// prey.
	OpFlap = "flap"
)

// operatorCalls maps each operator to the calls it intercepts.
var operatorCalls = map[string][]Call{
	OpConnRefused:  {CallRequest, CallAccept},
	OpConnReset:    {CallRequest, CallAccept},
	OpBlackhole:    {CallRequest, CallAccept},
	OpSlowResponse: {CallRequest, CallAccept},
	OpPartialBody:  {CallRequest, CallAccept},
	OpFlap:         {CallRequest, CallAccept},
}

// Names lists the operator catalogue, sorted.
func Names() []string {
	names := make([]string, 0, len(operatorCalls))
	for name := range operatorCalls {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FaultError is an injected network failure. Forwarded tells the retry
// ladder whether request bytes may have reached the peer — the property
// that decides whether re-issuing a non-idempotent request is sound.
type FaultError struct {
	Op        string // operator name
	Call      Call   // interception point
	Target    string // host (Transport) or remote address (Listener)
	Forwarded bool   // request bytes may have reached the peer
	Err       error  // underlying errno / sentinel
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("netfault: %s on %s %s: %v", e.Op, e.Call, e.Target, e.Err)
}
func (e *FaultError) Unwrap() error { return e.Err }

// Timeout makes a blackhole's error satisfy net.Error's timeout probe, the
// way a real swallowed connection surfaces.
func (e *FaultError) Timeout() bool { return e.Op == OpBlackhole }

// Temporary is retained for net.Error compatibility.
func (e *FaultError) Temporary() bool { return !e.Forwarded }

// ArmConfig schedules one armed operator.
type ArmConfig struct {
	// Seed derives the gaps between fires; 0 fires on consecutive matching
	// calls.
	Seed int64
	// Times bounds total fires: 0 means 1, negative means until Heal.
	Times int
	// After lets this many matching calls through before the schedule
	// starts (deterministic offset for precision tests).
	After int
	// TargetContains restricts matching to targets containing the
	// substring ("" matches everything). The Transport matches against
	// "host/path"; the Listener against the remote address.
	TargetContains string
}

// ParseSpec parses an "op", "op:seed", or "op:seed:times" spec.
func ParseSpec(spec string) (string, ArmConfig, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	if _, ok := operatorCalls[name]; !ok {
		return "", ArmConfig{}, fmt.Errorf("netfault: unknown operator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	var cfg ArmConfig
	if len(parts) > 3 {
		return "", ArmConfig{}, fmt.Errorf("netfault: bad spec %q: want op[:seed[:times]]", spec)
	}
	if len(parts) >= 2 {
		seed, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return "", ArmConfig{}, fmt.Errorf("netfault: bad seed in spec %q: %v", spec, err)
		}
		cfg.Seed = seed
	}
	if len(parts) == 3 {
		times, err := strconv.Atoi(parts[2])
		if err != nil {
			return "", ArmConfig{}, fmt.Errorf("netfault: bad times in spec %q: %v", spec, err)
		}
		cfg.Times = times
	}
	return name, cfg, nil
}

// armed is one scheduled operator instance.
type armed struct {
	name      string
	cfg       ArmConfig
	r         *rand.Rand
	calls     map[Call]bool
	remaining int // fires left; -1 = unbounded
	skip      int // matching calls to let through before the next fire
	fired     int
	// burst is the flap operator's remaining consecutive fires; when it
	// runs out a fresh gap and burst are drawn from the seed.
	burst int
}

func (a *armed) matches(call Call, target string) bool {
	if !a.calls[call] {
		return false
	}
	return a.cfg.TargetContains == "" || strings.Contains(target, a.cfg.TargetContains)
}

// next consumes one matching call and reports whether the operator fires.
func (a *armed) next() bool {
	if a.remaining == 0 {
		return false
	}
	if a.skip > 0 {
		a.skip--
		return false
	}
	if a.remaining > 0 {
		a.remaining--
	}
	a.fired++
	switch {
	case a.name == OpFlap:
		// Flap fires in bursts: consume the burst, then draw the next
		// clean gap and burst length from the seed.
		if a.burst > 0 {
			a.burst--
		} else if a.r != nil {
			a.burst = a.r.Intn(3)
			a.skip = 1 + a.r.Intn(4)
		} else {
			a.burst = 1
			a.skip = 2
		}
	case a.r != nil:
		a.skip = a.r.Intn(3)
	}
	return true
}

// Injector wraps transports and listeners with armed fault operators. It
// is safe for concurrent use; the fault schedule is serialized under one
// mutex, so a single-threaded caller sees a fully deterministic fault
// history.
type Injector struct {
	// MaxBlock caps how long a blackhole stalls when the caller's context
	// has no sooner deadline. <=0 means 1s. Chaos scenarios shrink it so a
	// partitioned run finishes in test time.
	MaxBlock time.Duration
	// SlowFor is the slow-response operator's unit delay; the injected
	// latency is 1–4× this. <=0 means 5ms.
	SlowFor time.Duration

	mu      sync.Mutex
	armedO  []*armed
	counts  map[Call]int
	retired map[string]int // fire counts of healed operators
}

// NewInjector returns an empty fault plan.
func NewInjector() *Injector {
	return &Injector{counts: make(map[Call]int)}
}

// Arm schedules one operator. Unknown names error; arming is additive.
func (in *Injector) Arm(name string, cfg ArmConfig) error {
	calls, ok := operatorCalls[name]
	if !ok {
		return fmt.Errorf("netfault: unknown operator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	a := &armed{name: name, cfg: cfg, calls: make(map[Call]bool, len(calls))}
	for _, c := range calls {
		a.calls[c] = true
	}
	a.remaining = cfg.Times
	if cfg.Times == 0 {
		a.remaining = 1
	}
	a.skip = cfg.After
	if cfg.Seed != 0 {
		a.r = rand.New(rand.NewSource(cfg.Seed))
		a.skip += a.r.Intn(3)
	}
	in.mu.Lock()
	in.armedO = append(in.armedO, a)
	in.mu.Unlock()
	return nil
}

// ArmSpec arms from an "op[:seed[:times]]" spec with an optional target
// filter. The sustained operators (flap, slow-response, blackhole) default
// to firing until healed — one fire is not a weather pattern.
func (in *Injector) ArmSpec(spec, targetContains string) error {
	name, cfg, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	cfg.TargetContains = targetContains
	if cfg.Times == 0 {
		switch name {
		case OpFlap, OpSlowResponse, OpBlackhole:
			cfg.Times = -1
		}
	}
	return in.Arm(name, cfg)
}

// Heal disarms every operator: the network condition is over. Counters
// survive.
func (in *Injector) Heal() {
	in.mu.Lock()
	for _, a := range in.armedO {
		if in.retired == nil {
			in.retired = make(map[string]int)
		}
		in.retired[a.name] += a.fired
	}
	in.armedO = nil
	in.mu.Unlock()
}

// HealTarget disarms only the operators whose filter names the target — how
// a scenario heals one shard's partition while another stays dark.
func (in *Injector) HealTarget(targetContains string) {
	in.mu.Lock()
	kept := in.armedO[:0]
	for _, a := range in.armedO {
		if a.cfg.TargetContains == targetContains {
			if in.retired == nil {
				in.retired = make(map[string]int)
			}
			in.retired[a.name] += a.fired
			continue
		}
		kept = append(kept, a)
	}
	in.armedO = kept
	in.mu.Unlock()
}

// Counts returns how many calls of each kind the injector has seen
// (faulted or not).
func (in *Injector) Counts() map[Call]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Call]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Fired returns fire counts by operator name, armed and healed alike.
func (in *Injector) Fired() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int)
	for _, a := range in.armedO {
		out[a.name] += a.fired
	}
	for name, n := range in.retired {
		out[name] += n
	}
	return out
}

// maxBlock returns the blackhole stall cap.
func (in *Injector) maxBlock() time.Duration {
	if in.MaxBlock > 0 {
		return in.MaxBlock
	}
	return time.Second
}

// slowFor returns one slow-response delay drawn from the operator's seed.
func (in *Injector) slowFor(a *armed) time.Duration {
	unit := in.SlowFor
	if unit <= 0 {
		unit = 5 * time.Millisecond
	}
	n := 2
	if a.r != nil {
		in.mu.Lock()
		n = 1 + a.r.Intn(4)
		in.mu.Unlock()
	}
	return time.Duration(n) * unit
}

// fault consults the schedule for one call and returns the operator that
// fires (nil to proceed).
func (in *Injector) fault(call Call, target string) *armed {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[call]++
	for _, a := range in.armedO {
		if a.matches(call, target) && a.next() {
			return a
		}
	}
	return nil
}

// errFor builds the FaultError for a fired operator; nil means the
// operator injects behavior (latency) rather than an error.
func errFor(a *armed, call Call, target string) *FaultError {
	switch a.name {
	case OpConnRefused, OpFlap:
		return &FaultError{Op: a.name, Call: call, Target: target, Err: syscall.ECONNREFUSED}
	case OpConnReset:
		return &FaultError{Op: a.name, Call: call, Target: target, Forwarded: true, Err: syscall.ECONNRESET}
	case OpBlackhole:
		return &FaultError{Op: a.name, Call: call, Target: target, Forwarded: true, Err: syscall.ETIMEDOUT}
	case OpPartialBody:
		return &FaultError{Op: a.name, Call: call, Target: target, Forwarded: true, Err: syscall.ECONNRESET}
	}
	return nil
}
