package fleet

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// shMember builds a ready-on-start member running a shell script — the
// supervisor is process-shape-agnostic, so plain /bin/sh stands in for a
// collector in these tests.
func shMember(name, script string, budget int) MemberSpec {
	return MemberSpec{Name: name, Argv: []string{"/bin/sh", "-c", script}, RestartBudget: budget}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRestartBudgetExhausts: a member that always crashes is restarted
// exactly budget times, then left down and marked Exhausted — the
// supervisor never spins on a hot-crashing process.
func TestRestartBudgetExhausts(t *testing.T) {
	sup, err := New(Config{
		Members:        []MemberSpec{shMember("crasher", "exit 7", 2)},
		RestartBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "budget exhaustion", func() bool {
		st := sup.Status()[0]
		return !st.Running && st.Restarts == 2 && st.Exhausted
	})
	st := sup.Status()[0]
	if !strings.Contains(st.LastExit, "7") {
		t.Fatalf("last exit %q does not carry the crash status", st.LastExit)
	}
	if err := sup.Stop(time.Second); err != nil {
		t.Fatalf("stop after exhaustion: %v", err)
	}
}

// TestKillTriggersRestart: SIGKILL-ing a healthy member is repaired by
// the supervisor within the budget.
func TestKillTriggersRestart(t *testing.T) {
	sup, err := New(Config{
		Members:        []MemberSpec{shMember("worker", "while true; do sleep 0.05; done", 3)},
		RestartBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(2 * time.Second)
	first := sup.Status()[0].PID
	if first == 0 {
		t.Fatal("no pid for a running member")
	}
	if err := sup.Kill("worker"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "supervised restart", func() bool {
		st := sup.Status()[0]
		return st.Running && st.Restarts == 1 && st.PID != first
	})
}

// TestStopDeliversSIGTERM: Stop must reach members as SIGTERM (the
// drain-and-seal signal), not SIGKILL, and a member that honors it exits
// within grace without being restarted. The script echoes only after its
// trap is installed so the test never signals a half-started shell.
func TestStopDeliversSIGTERM(t *testing.T) {
	var out lockedBuffer
	sup, err := New(Config{
		Members: []MemberSpec{shMember("drainer",
			`trap 'echo draining; exit 0' TERM; echo armed; while true; do sleep 0.05; done`, 3)},
		Output:         &out,
		RestartBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trap armed", func() bool { return strings.Contains(out.String(), "[drainer] armed") })
	if err := sup.Stop(3 * time.Second); err != nil {
		t.Fatalf("graceful stop escalated: %v", err)
	}
	st := sup.Status()[0]
	if st.Running || st.Restarts != 0 {
		t.Fatalf("after stop: %+v", st)
	}
	if !strings.Contains(out.String(), "[drainer] draining") {
		t.Fatalf("member never saw SIGTERM; output: %q", out.String())
	}
}

// TestStopEscalatesToKill: a member that ignores SIGTERM is SIGKILLed
// after the grace period, and Stop reports the escalation.
func TestStopEscalatesToKill(t *testing.T) {
	var out lockedBuffer
	sup, err := New(Config{
		Members: []MemberSpec{shMember("stubborn",
			`trap '' TERM; echo armed; while true; do sleep 0.05; done`, 3)},
		Output:         &out,
		RestartBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trap armed", func() bool { return strings.Contains(out.String(), "[stubborn] armed") })
	if err := sup.Stop(100 * time.Millisecond); err == nil {
		t.Fatal("stop of a TERM-ignoring member reported clean")
	}
	if st := sup.Status()[0]; st.Running {
		t.Fatalf("member survived SIGKILL: %+v", st)
	}
}

// TestSignalAndValidation: Signal reaches a live member; unknown names
// and empty fleets are constructor/call errors.
func TestSignalAndValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New(Config{Members: []MemberSpec{
		shMember("a", "sleep 1", 0), shMember("a", "sleep 1", 0),
	}}); err == nil {
		t.Fatal("duplicate member name accepted")
	}
	var out lockedBuffer
	sup, err := New(Config{
		Members: []MemberSpec{shMember("sig",
			`trap 'echo hup' HUP; echo armed; while true; do sleep 0.05; done`, 3)},
		Output: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(2 * time.Second)
	if err := sup.Kill("ghost"); err == nil {
		t.Fatal("kill of unknown member accepted")
	}
	waitFor(t, "trap armed", func() bool { return strings.Contains(out.String(), "[sig] armed") })
	if err := sup.Signal("sig", syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "HUP delivery", func() bool { return strings.Contains(out.String(), "[sig] hup") })
}

// TestNeverRestart: a negative budget means crash-once-stay-down.
func TestNeverRestart(t *testing.T) {
	sup, err := New(Config{
		Members:        []MemberSpec{shMember("oneshot", "exit 1", -1)},
		RestartBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "member down", func() bool { return !sup.Status()[0].Running })
	time.Sleep(50 * time.Millisecond)
	if st := sup.Status()[0]; st.Restarts != 0 {
		t.Fatalf("negative budget restarted anyway: %+v", st)
	}
	sup.Stop(time.Second)
}

// lockedBuffer is a concurrency-safe bytes.Buffer for member output.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
