// Package fleet is a small process supervisor for the sharded audit
// plane: it spawns a set of member processes (one collector per shard
// plus the gateway), health-checks them over HTTP, restarts crashed
// members from their durable state under a restart budget, and
// propagates shutdown as SIGTERM so every member gets its graceful
// drain-and-seal.
//
// The supervisor trusts the members' own crash-recovery story instead of
// inventing one: a collector that dies mid-epoch is restarted on the same
// epoch-log directory, where recoverIncarnation seals the stranded tail
// Degraded and marks the next epoch Fresh — the audit then grades the
// loss Unauditable, never an accusation. The supervisor's only promises
// are liveness (restart within budget) and orderly death (SIGTERM first,
// SIGKILL after the grace period).
package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// MemberSpec describes one supervised process.
type MemberSpec struct {
	// Name labels the member in status and log output and addresses it in
	// Kill. Must be unique.
	Name string
	// Argv is the full command line; Argv[0] is the binary.
	Argv []string
	// Dir is the working directory ("" = inherit).
	Dir string
	// Env entries are appended to the parent environment.
	Env []string
	// ReadyURL, when set, is polled (GET, expect 200) before Start
	// returns and after every restart. "" means ready-on-start.
	ReadyURL string
	// RestartBudget is how many restarts the supervisor will pay for this
	// member; past it a crashing member stays down (visible in Status).
	// 0 means DefaultRestartBudget; negative means never restart.
	RestartBudget int
}

// DefaultRestartBudget is the per-member restart allowance when the spec
// leaves it zero.
const DefaultRestartBudget = 3

// MemberStatus is one member's observable supervision state.
type MemberStatus struct {
	Name     string `json:"name"`
	PID      int    `json:"pid,omitempty"`
	Running  bool   `json:"running"`
	Ready    bool   `json:"ready"`
	Restarts int    `json:"restarts"`
	// Exhausted means the member died past its restart budget.
	Exhausted bool   `json:"exhausted,omitempty"`
	LastExit  string `json:"lastExit,omitempty"`
}

// Config configures a Supervisor.
type Config struct {
	Members []MemberSpec
	// Output receives every member's combined stdout+stderr, each line
	// prefixed "[name] ". Writes are serialized by the supervisor, so a
	// plain bytes.Buffer is safe. nil discards.
	Output io.Writer
	// ReadyTimeout bounds one member's readiness wait (default 15s).
	ReadyTimeout time.Duration
	// RestartBackoff is the delay before the first restart, doubling per
	// consecutive restart (default 100ms).
	RestartBackoff time.Duration
	// Logf receives supervisor events (spawn, crash, restart, stop). nil
	// writes "[fleet] " lines to Output when that is set, else discards.
	// A custom Logf must be safe to call concurrently and must not write
	// to Output unsynchronized.
	Logf func(format string, args ...any)
}

// member is one supervised process's live state.
type member struct {
	spec   MemberSpec
	budget int

	mu       sync.Mutex
	cmd      *exec.Cmd
	running  bool
	ready    bool
	restarts int
	lastExit string
	stopping bool
	dead     chan struct{} // closed when the monitor gives up for good
}

// Supervisor runs a fleet of member processes.
type Supervisor struct {
	cfg     Config
	logf    func(string, ...any)
	out     *syncWriter
	members []*member
	byName  map[string]*member
	wg      sync.WaitGroup

	mu      sync.Mutex
	started bool
	stopped bool
}

// New validates the member list.
func New(cfg Config) (*Supervisor, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: no members")
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 15 * time.Second
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 100 * time.Millisecond
	}
	s := &Supervisor{cfg: cfg, byName: make(map[string]*member, len(cfg.Members))}
	if cfg.Output != nil {
		// One lock serializes every writer into Output: member stdout/stderr
		// copiers and the supervisor's own log lines all interleave here.
		s.out = &syncWriter{w: cfg.Output}
	}
	switch {
	case cfg.Logf != nil:
		s.logf = cfg.Logf
	case s.out != nil:
		s.logf = func(format string, args ...any) {
			fmt.Fprintf(s.out, "[fleet] "+format+"\n", args...)
		}
	default:
		s.logf = func(string, ...any) {}
	}
	for _, spec := range cfg.Members {
		if spec.Name == "" || len(spec.Argv) == 0 {
			return nil, fmt.Errorf("fleet: member needs a name and an argv")
		}
		if _, dup := s.byName[spec.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate member %q", spec.Name)
		}
		budget := spec.RestartBudget
		if budget == 0 {
			budget = DefaultRestartBudget
		}
		m := &member{spec: spec, budget: budget, dead: make(chan struct{})}
		s.members = append(s.members, m)
		s.byName[spec.Name] = m
	}
	return s, nil
}

// Start spawns every member in order and waits for each one's readiness.
// A member that fails to become ready fails Start; already-started
// members keep running (call Stop to clean up).
func (s *Supervisor) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("fleet: already started")
	}
	s.started = true
	s.mu.Unlock()
	for _, m := range s.members {
		if err := s.spawn(m); err != nil {
			return err
		}
		if err := s.waitReady(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

// spawn launches one member and its monitor goroutine.
func (s *Supervisor) spawn(m *member) error {
	cmd := exec.Command(m.spec.Argv[0], m.spec.Argv[1:]...)
	cmd.Dir = m.spec.Dir
	if len(m.spec.Env) > 0 {
		cmd.Env = append(cmd.Environ(), m.spec.Env...)
	}
	if s.out != nil {
		pw := &prefixWriter{w: s.out, prefix: "[" + m.spec.Name + "] "}
		cmd.Stdout = pw
		cmd.Stderr = pw
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: starting %s: %w", m.spec.Name, err)
	}
	s.logf("fleet: %s started (pid %d)", m.spec.Name, cmd.Process.Pid)
	m.mu.Lock()
	m.cmd = cmd
	m.running = true
	m.ready = m.spec.ReadyURL == ""
	m.mu.Unlock()
	s.wg.Add(1)
	go s.monitor(m, cmd)
	return nil
}

// monitor waits for one incarnation to exit and decides restart vs give
// up. Restarting reuses the identical spec: the member's durable state on
// disk is its recovery story.
func (s *Supervisor) monitor(m *member, cmd *exec.Cmd) {
	defer s.wg.Done()
	err := cmd.Wait()
	exit := "exit 0"
	if err != nil {
		exit = err.Error()
	}
	m.mu.Lock()
	m.running = false
	m.ready = false
	m.lastExit = exit
	stopping := m.stopping
	restarts := m.restarts
	m.mu.Unlock()
	if stopping {
		s.logf("fleet: %s stopped (%s)", m.spec.Name, exit)
		close(m.dead)
		return
	}
	if m.budget < 0 || restarts >= m.budget {
		s.logf("fleet: %s died (%s) with no restart budget left (%d used)", m.spec.Name, exit, restarts)
		close(m.dead)
		return
	}
	// Crash: pay one restart, with a doubling backoff so a hot-crashing
	// member cannot spin the supervisor.
	delay := s.cfg.RestartBackoff << uint(restarts)
	s.logf("fleet: %s died (%s); restart %d/%d in %v", m.spec.Name, exit, restarts+1, m.budget, delay)
	time.Sleep(delay)
	m.mu.Lock()
	if m.stopping {
		m.mu.Unlock()
		close(m.dead)
		return
	}
	m.restarts++
	m.mu.Unlock()
	if err := s.spawn(m); err != nil {
		s.logf("fleet: restarting %s: %v", m.spec.Name, err)
		m.mu.Lock()
		m.lastExit = err.Error()
		m.mu.Unlock()
		close(m.dead)
		return
	}
	// Readiness after a restart is polled in the background: the fleet's
	// front door reports the hole via its own AND-/readyz meanwhile.
	go s.waitReady(context.Background(), m) //karousos:errladder-ok readiness after restart is advisory; Status and /readyz carry the signal
}

// waitReady polls the member's ReadyURL until 200, timeout, or ctx done.
func (s *Supervisor) waitReady(ctx context.Context, m *member) error {
	if m.spec.ReadyURL == "" {
		return nil
	}
	deadline := time.Now().Add(s.cfg.ReadyTimeout)
	client := &http.Client{Timeout: time.Second}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Get(m.spec.ReadyURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				m.mu.Lock()
				m.ready = true
				m.mu.Unlock()
				s.logf("fleet: %s ready", m.spec.Name)
				return nil
			}
		}
		m.mu.Lock()
		running := m.running
		m.mu.Unlock()
		if !running {
			// Crashed while warming up; the monitor owns what happens next.
			return fmt.Errorf("fleet: %s exited before becoming ready", m.spec.Name)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %s not ready after %v", m.spec.Name, s.cfg.ReadyTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Kill sends SIGKILL to one member — the chaos hook: an abrupt death the
// supervisor is expected to notice and repair.
func (s *Supervisor) Kill(name string) error {
	m, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("fleet: no member %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || m.cmd == nil || m.cmd.Process == nil {
		return fmt.Errorf("fleet: %s is not running", name)
	}
	return m.cmd.Process.Kill()
}

// Signal sends sig to one member without touching supervision state.
func (s *Supervisor) Signal(name string, sig syscall.Signal) error {
	m, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("fleet: no member %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running || m.cmd == nil || m.cmd.Process == nil {
		return fmt.Errorf("fleet: %s is not running", name)
	}
	return m.cmd.Process.Signal(sig)
}

// Status reports every member, in spec order.
func (s *Supervisor) Status() []MemberStatus {
	out := make([]MemberStatus, 0, len(s.members))
	for _, m := range s.members {
		m.mu.Lock()
		st := MemberStatus{
			Name:     m.spec.Name,
			Running:  m.running,
			Ready:    m.ready,
			Restarts: m.restarts,
			LastExit: m.lastExit,
		}
		if m.running && m.cmd != nil && m.cmd.Process != nil {
			st.PID = m.cmd.Process.Pid
		}
		if !m.running && m.budget >= 0 && m.restarts >= m.budget && m.lastExit != "" {
			st.Exhausted = true
		}
		m.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Ready reports whether every member is running and ready.
func (s *Supervisor) Ready() bool {
	for _, st := range s.Status() {
		if !st.Running || !st.Ready {
			return false
		}
	}
	return true
}

// Stop shuts the fleet down: SIGTERM to every member in reverse spec
// order (the gateway before its collectors, so the front door stops
// routing into a draining shard), then SIGKILL to whatever outlives the
// grace period. Members are not restarted once Stop begins.
func (s *Supervisor) Stop(grace time.Duration) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	for i := len(s.members) - 1; i >= 0; i-- {
		m := s.members[i]
		m.mu.Lock()
		m.stopping = true
		if m.running && m.cmd != nil && m.cmd.Process != nil {
			s.logf("fleet: stopping %s (SIGTERM)", m.spec.Name)
			m.cmd.Process.Signal(syscall.SIGTERM) //karousos:errladder-ok the grace-period SIGKILL below is the fallback for a failed signal
		} else {
			// Already down; nothing will close dead unless it was closed by
			// the monitor — check below.
			select {
			case <-m.dead:
			default:
				// Monitor is mid-restart-backoff; stopping=true makes it
				// close dead without respawning.
			}
		}
		m.mu.Unlock()
	}
	deadline := time.After(grace)
	var firstErr error
	for i := len(s.members) - 1; i >= 0; i-- {
		m := s.members[i]
		select {
		case <-m.dead:
		case <-deadline:
			m.mu.Lock()
			if m.running && m.cmd != nil && m.cmd.Process != nil {
				s.logf("fleet: %s outlived the grace period (SIGKILL)", m.spec.Name)
				m.cmd.Process.Kill() //karousos:errladder-ok the process is already past grace; Wait below reports its end state
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: %s needed SIGKILL", m.spec.Name)
				}
			}
			m.mu.Unlock()
			<-m.dead
		}
	}
	s.wg.Wait()
	return firstErr
}

// syncWriter serializes concurrent writers into one io.Writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// prefixWriter prefixes each written chunk's lines with the member name.
// Good enough for human-readable interleaved fleet output.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	tail   []byte
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	data := append(p.tail, b...)
	p.tail = nil
	for {
		i := indexByte(data, '\n')
		if i < 0 {
			p.tail = append(p.tail, data...)
			break
		}
		line := data[:i+1]
		data = data[i+1:]
		if _, err := io.WriteString(p.w, p.prefix); err != nil {
			return len(b), nil //karousos:errladder-ok member log decoration is best-effort
		}
		if _, err := p.w.Write(line); err != nil {
			return len(b), nil //karousos:errladder-ok member log decoration is best-effort
		}
	}
	return len(b), nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}
