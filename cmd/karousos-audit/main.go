// karousos-audit is the end-to-end command-line workflow of the system:
//
//	karousos-audit serve -app wiki -n 600 -conc 30 -out rundir
//	    serves a generated workload, writing the trusted trace and the
//	    untrusted advice to rundir/trace.json and rundir/advice.bin;
//
//	karousos-audit verify -app wiki -dir rundir
//	    audits the stored (trace, advice) pair and reports the verdict —
//	    this is what the paper's principal runs periodically on a machine
//	    they control;
//
//	karousos-audit tamper -dir rundir
//	    flips one response in the stored trace, so a subsequent verify
//	    demonstrates rejection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"karousos.dev/karousos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serveCmd(os.Args[2:])
	case "verify":
		verifyCmd(os.Args[2:])
	case "tamper":
		tamperCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: karousos-audit serve|verify|tamper [flags]")
	os.Exit(2)
}

func appSpec(name string) karousos.AppSpec {
	switch name {
	case "motd":
		return karousos.MOTDApp()
	case "stacks":
		return karousos.StacksApp()
	case "wiki":
		return karousos.WikiApp()
	}
	fmt.Fprintf(os.Stderr, "unknown app %q (motd, stacks, wiki)\n", name)
	os.Exit(2)
	return karousos.AppSpec{}
}

func workloadFor(name string, n int, seed int64) []karousos.Request {
	switch name {
	case "motd":
		return karousos.MOTDWorkload(n, karousos.Mixed, seed)
	case "stacks":
		return karousos.StacksWorkload(n, karousos.Mixed, seed)
	default:
		return karousos.WikiWorkload(n, seed)
	}
}

func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki")
	n := fs.Int("n", 600, "number of requests")
	conc := fs.Int("conc", 30, "concurrent requests")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	out := fs.String("out", "karousos-run", "output directory")
	fs.Parse(args)

	spec := appSpec(*app)
	run, err := karousos.Serve(spec, workloadFor(*app, *n, *seed), *conc, *seed, karousos.CollectKarousos)
	check(err)

	check(os.MkdirAll(*out, 0o755))
	traceJSON, err := json.MarshalIndent(run.Trace, "", " ")
	check(err)
	check(os.WriteFile(filepath.Join(*out, "trace.json"), traceJSON, 0o644))
	check(os.WriteFile(filepath.Join(*out, "advice.bin"), run.Karousos.MarshalBinary(), 0o644))
	meta, err := json.Marshal(map[string]any{"app": *app})
	check(err)
	check(os.WriteFile(filepath.Join(*out, "meta.json"), meta, 0o644))

	fmt.Printf("served %d requests (%s, conc %d) in %v; %d conflicts\n",
		*n, *app, *conc, run.Elapsed, run.Conflicts)
	fmt.Printf("wrote %s/trace.json (%d events) and %s/advice.bin (%.1f KiB)\n",
		*out, len(run.Trace.Events), *out, float64(run.Karousos.Size())/1024)
}

func loadRun(dir string) (karousos.AppSpec, *karousos.Trace, []byte) {
	metaJSON, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	check(err)
	var meta struct{ App string }
	check(json.Unmarshal(metaJSON, &meta))
	traceJSON, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	check(err)
	var tr karousos.Trace
	check(json.Unmarshal(traceJSON, &tr))
	normalizeTrace(&tr)
	adv, err := os.ReadFile(filepath.Join(dir, "advice.bin"))
	check(err)
	return appSpec(meta.App), &tr, adv
}

// normalizeTrace re-canonicalizes values after the JSON round trip (JSON
// decodes map values as map[string]interface{}, which is already the
// canonical representation, but numbers inside may need no coercion — this
// is belt and braces for hand-edited traces).
func normalizeTrace(tr *karousos.Trace) {
	for i := range tr.Events {
		tr.Events[i].Data = canon(tr.Events[i].Data)
	}
}

func canon(v karousos.V) karousos.V {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			x[k] = canon(e)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = canon(e)
		}
		return x
	default:
		return v
	}
}

func verifyCmd(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "karousos-run", "run directory from `serve`")
	graph := fs.String("graph", "", "write the execution graph G as Graphviz DOT to this file (cycles highlighted)")
	fs.Parse(args)

	spec, tr, advBytes := loadRun(*dir)
	adv, err := karousos.UnmarshalAdvice(advBytes)
	check(err)
	var verdict *karousos.VerifyResult
	if *graph != "" {
		f, err := os.Create(*graph)
		check(err)
		defer f.Close()
		verdict = karousos.VerifyKarousosWithGraph(spec, tr, adv, f)
		fmt.Printf("wrote execution graph to %s\n", *graph)
	} else {
		verdict = karousos.VerifyKarousos(spec, tr, adv)
	}
	if verdict.Err != nil {
		fmt.Printf("AUDIT REJECTED after %v: %v\n", verdict.Elapsed, verdict.Err)
		os.Exit(1)
	}
	fmt.Printf("AUDIT ACCEPTED in %v: %d requests, %d groups, %d handlers re-run, graph %d nodes / %d edges\n",
		verdict.Elapsed, verdict.Stats.Requests, verdict.Stats.Groups,
		verdict.Stats.HandlersRerun, verdict.Stats.GraphNodes, verdict.Stats.GraphEdges)
}

func tamperCmd(args []string) {
	fs := flag.NewFlagSet("tamper", flag.ExitOnError)
	dir := fs.String("dir", "karousos-run", "run directory from `serve`")
	fs.Parse(args)

	path := filepath.Join(*dir, "trace.json")
	traceJSON, err := os.ReadFile(path)
	check(err)
	var tr karousos.Trace
	check(json.Unmarshal(traceJSON, &tr))
	for i := range tr.Events {
		if tr.Events[i].Kind == karousos.TraceResp {
			tr.Events[i].Data = karousos.Map("status", "tampered")
			fmt.Printf("tampered response of %s\n", tr.Events[i].RID)
			break
		}
	}
	out, err := json.MarshalIndent(&tr, "", " ")
	check(err)
	check(os.WriteFile(path, out, 0o644))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "karousos-audit:", err)
		os.Exit(1)
	}
}
