// karousos-audit is the end-to-end command-line workflow of the system:
//
//	karousos-audit serve -app wiki -n 600 -conc 30 -out rundir
//	    serves a generated workload, writing the trusted trace and the
//	    untrusted advice to rundir/trace.json and rundir/advice.bin;
//
//	karousos-audit verify -app wiki -dir rundir
//	    audits the stored (trace, advice) pair and reports the verdict —
//	    this is what the paper's principal runs periodically on a machine
//	    they control;
//
//	karousos-audit tamper -dir rundir
//	    flips one response in the stored trace, so a subsequent verify
//	    demonstrates rejection;
//
//	karousos-audit faultinject -dir rundir -op bit-flip:7
//	    corrupts the stored advice with a catalogue operator, so a
//	    subsequent verify demonstrates a coded rejection.
//
// Exit codes make the verdict scriptable: 0 the audit accepted, 2 the audit
// rejected (the reason code is printed; -reason-code prints it bare), 1 an
// internal error (bad flags, unreadable files) — so a monitoring wrapper
// can distinguish "the server cheated" from "the audit never ran".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"karousos.dev/karousos"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests drive the CLI
// in-process and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	var err error
	switch args[0] {
	case "serve":
		err = serveCmd(args[1:], stdout, stderr)
	case "verify":
		return verifyCmd(args[1:], stdout, stderr)
	case "tamper":
		err = tamperCmd(args[1:], stdout, stderr)
	case "faultinject":
		err = faultinjectCmd(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "karousos-audit:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: karousos-audit serve|verify|tamper|faultinject [flags]

  serve       run a workload, write trace.json + advice.bin to -out
  verify      audit a run directory — or, with -epochs, a karousos-auditd
              epoch log — exits 0 on ACCEPT, 2 on REJECT (with a reason
              code), 1 on internal error
  tamper      flip one response in the stored trace
  faultinject corrupt the stored advice with a catalogue operator (-op)

reason codes:
  MalformedAdvice LogMismatch GraphCycle IsolationViolation
  OutputMismatch ResourceLimit InternalFault`)
}

func appSpec(name string) (karousos.AppSpec, error) {
	switch name {
	case "motd":
		return karousos.MOTDApp(), nil
	case "stacks":
		return karousos.StacksApp(), nil
	case "wiki":
		return karousos.WikiApp(), nil
	}
	return karousos.AppSpec{}, fmt.Errorf("unknown app %q (motd, stacks, wiki)", name)
}

func workloadFor(name string, n int, seed int64) []karousos.Request {
	switch name {
	case "motd":
		return karousos.MOTDWorkload(n, karousos.Mixed, seed)
	case "stacks":
		return karousos.StacksWorkload(n, karousos.Mixed, seed)
	default:
		return karousos.WikiWorkload(n, seed)
	}
}

func serveCmd(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki")
	n := fs.Int("n", 600, "number of requests")
	conc := fs.Int("conc", 30, "concurrent requests")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	out := fs.String("out", "karousos-run", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := appSpec(*app)
	if err != nil {
		return err
	}
	run, err := karousos.Serve(spec, workloadFor(*app, *n, *seed), *conc, *seed, karousos.CollectKarousos)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	traceJSON, err := json.MarshalIndent(run.Trace, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "trace.json"), traceJSON, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "advice.bin"), run.Karousos.MarshalBinary(), 0o644); err != nil {
		return err
	}
	meta, err := json.Marshal(map[string]any{"app": *app})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "meta.json"), meta, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "served %d requests (%s, conc %d) in %v; %d conflicts\n",
		*n, *app, *conc, run.Elapsed, run.Conflicts)
	fmt.Fprintf(stdout, "wrote %s/trace.json (%d events) and %s/advice.bin (%.1f KiB)\n",
		*out, len(run.Trace.Events), *out, float64(run.Karousos.Size())/1024)
	return nil
}

func loadRun(dir string) (karousos.AppSpec, *karousos.Trace, []byte, error) {
	metaJSON, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	var meta struct{ App string }
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	spec, err := appSpec(meta.App)
	if err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	traceJSON, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	var tr karousos.Trace
	if err := json.Unmarshal(traceJSON, &tr); err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	normalizeTrace(&tr)
	adv, err := os.ReadFile(filepath.Join(dir, "advice.bin"))
	if err != nil {
		return karousos.AppSpec{}, nil, nil, err
	}
	return spec, &tr, adv, nil
}

// normalizeTrace re-canonicalizes values after the JSON round trip (JSON
// decodes map values as map[string]interface{}, which is already the
// canonical representation, but numbers inside may need no coercion — this
// is belt and braces for hand-edited traces).
func normalizeTrace(tr *karousos.Trace) {
	for i := range tr.Events {
		tr.Events[i].Data = canon(tr.Events[i].Data)
	}
}

func canon(v karousos.V) karousos.V {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			x[k] = canon(e)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = canon(e)
		}
		return x
	default:
		return v
	}
}

func verifyCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-run", "run directory from `serve`")
	graph := fs.String("graph", "", "write the execution graph G as Graphviz DOT to this file (cycles highlighted)")
	reasonCode := fs.Bool("reason-code", false, "on rejection, print only the bare reason code on stdout")
	deadline := fs.Duration("deadline", karousos.DefaultLimits().Deadline, "wall-clock budget for the audit (0 = unbounded)")
	faultSpec := fs.String("faultinject", "", "corrupt the advice with a catalogue operator (\"op\" or \"op:seed\") before auditing")
	epochs := fs.String("epochs", "", "audit a karousos-auditd epoch log directory instead of a run directory")
	workers := fs.Int("workers", 0, "audit parallelism: 0 = GOMAXPROCS, 1 = sequential (verdict identical at every setting)")
	memoOn := fs.Bool("memo", false, "memoize re-execution across epochs (content-addressed tag-group cache; verdict identical on or off)")
	memoMax := fs.Int("memo-max-bytes", 256<<20, "memo cache byte budget when -memo is set (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	memoBytes := 0
	if *memoOn {
		memoBytes = *memoMax
		if memoBytes <= 0 {
			// auditd treats 0 as "disabled"; an explicit -memo with no budget
			// means unbounded, which the cache spells as a negative budget
			// being impossible — use a budget far beyond any epoch log.
			memoBytes = 1 << 40
		}
	}
	if *epochs != "" {
		return verifyEpochs(*epochs, *deadline, *workers, memoBytes, *reasonCode, stdout, stderr)
	}

	spec, tr, advBytes, err := loadRun(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "karousos-audit:", err)
		return 1
	}
	if *faultSpec != "" {
		if advBytes, err = karousos.ApplyFault(*faultSpec, advBytes); err != nil {
			fmt.Fprintln(stderr, "karousos-audit:", err)
			return 1
		}
	}
	lim := karousos.DefaultLimits()
	lim.Deadline = *deadline
	var cache *karousos.MemoCache
	if memoBytes > 0 {
		// A single run directory is one epoch, so the cache cannot hit — but
		// it exercises the publish path and keeps the flag uniform with
		// -epochs mode.
		cache = karousos.NewMemoCache(memoBytes)
	}

	start := time.Now()
	var verdict *karousos.VerifyResult
	if err := lim.CheckAdviceBytes(len(advBytes)); err != nil {
		verdict = &karousos.VerifyResult{Elapsed: time.Since(start), Err: err}
	} else if adv, err := karousos.UnmarshalAdvice(advBytes); err != nil {
		verdict = &karousos.VerifyResult{Elapsed: time.Since(start), Err: err}
	} else if *graph != "" {
		f, err := os.Create(*graph)
		if err != nil {
			fmt.Fprintln(stderr, "karousos-audit:", err)
			return 1
		}
		defer f.Close()
		verdict = karousos.VerifyWith(spec, tr, adv, karousos.VerifyOptions{Workers: *workers, DumpGraph: f, Memo: cache})
		fmt.Fprintf(stdout, "wrote execution graph to %s\n", *graph)
	} else {
		verdict = karousos.VerifyWith(spec, tr, adv, karousos.VerifyOptions{Limits: lim, Workers: *workers, Memo: cache})
	}
	if verdict.Err != nil {
		code := karousos.RejectCodeOf(verdict.Err)
		if code == "" {
			// Not a structured rejection — the advice failed to decode.
			// At this boundary that is the MalformedAdvice verdict: the
			// server shipped bytes that are not advice.
			code = karousos.RejectMalformedAdvice
		}
		if *reasonCode {
			fmt.Fprintln(stdout, code)
		}
		fmt.Fprintf(stderr, "AUDIT REJECTED [%s] after %v: %v\n", code, verdict.Elapsed, verdict.Err)
		return 2
	}
	fmt.Fprintf(stdout, "AUDIT ACCEPTED in %v: %d requests, %d groups, %d handlers re-run, graph %d nodes / %d edges\n",
		verdict.Elapsed, verdict.Stats.Requests, verdict.Stats.Groups,
		verdict.Stats.HandlersRerun, verdict.Stats.GraphNodes, verdict.Stats.GraphEdges)
	return 0
}

// verifyEpochs audits every sealed epoch of an epoch log directory in
// order, carrying the verifier's dictionary state across epochs — the
// offline equivalent of karousos-auditd audit.
func verifyEpochs(dir string, deadline time.Duration, workers, memoMaxBytes int, reasonCode bool, stdout, stderr io.Writer) int {
	lim := karousos.DefaultLimits()
	lim.Deadline = deadline
	start := time.Now()
	st, err := karousos.AuditEpochDir(context.Background(), dir, lim, workers, memoMaxBytes)
	if err != nil {
		var rej *karousos.EpochReject
		if errors.As(err, &rej) {
			if reasonCode {
				fmt.Fprintln(stdout, rej.Code)
			}
			fmt.Fprintf(stderr, "AUDIT REJECTED epoch %d [%s] after %v: %s\n",
				rej.Epoch, rej.Code, time.Since(start), rej.Reason)
			return 2
		}
		fmt.Fprintln(stderr, "karousos-audit:", err)
		return 1
	}
	fmt.Fprintf(stdout, "AUDIT ACCEPTED in %v: %d epochs through epoch %d", time.Since(start), st.Accepted, st.LastAccepted)
	if memoMaxBytes > 0 {
		fmt.Fprintf(stdout, " (memo: %d hits, %d misses, %d evictions)",
			st.Stats.MemoHits, st.Stats.MemoMisses, st.Stats.MemoEvictions)
	}
	fmt.Fprintln(stdout)
	return 0
}

func tamperCmd(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tamper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-run", "run directory from `serve`")
	if err := fs.Parse(args); err != nil {
		return err
	}

	path := filepath.Join(*dir, "trace.json")
	traceJSON, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr karousos.Trace
	if err := json.Unmarshal(traceJSON, &tr); err != nil {
		return err
	}
	for i := range tr.Events {
		if tr.Events[i].Kind == karousos.TraceResp {
			tr.Events[i].Data = karousos.Map("status", "tampered")
			fmt.Fprintf(stdout, "tampered response of %s\n", tr.Events[i].RID)
			break
		}
	}
	out, err := json.MarshalIndent(&tr, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func faultinjectCmd(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("faultinject", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-run", "run directory from `serve`")
	spec := fs.String("op", "", "operator spec, \"op\" or \"op:seed\" (see -list)")
	out := fs.String("out", "", "output path for the corrupted advice (default: overwrite <dir>/advice.bin)")
	list := fs.Bool("list", false, "list the operator catalogue and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, op := range karousos.FaultCatalogue() {
			fmt.Fprintf(stdout, "%-18s %-9s %s\n", op.Name, op.Kind, op.Desc)
		}
		return nil
	}
	if *spec == "" {
		return fmt.Errorf("faultinject: -op is required (try -list)")
	}
	path := filepath.Join(*dir, "advice.bin")
	wire, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	mut, err := karousos.ApplyFault(*spec, wire)
	if err != nil {
		return err
	}
	if *out == "" {
		*out = path
	}
	if err := os.WriteFile(*out, mut, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "applied %s: %d bytes -> %d bytes at %s\n", *spec, len(wire), len(mut), *out)
	return nil
}
