// End-to-end CLI tests, in-process via run(): the serve → verify loop must
// exit 0, corrupted advice must exit 2 with a printed reason code, and a
// tampered trace must exit 2 with OutputMismatch — the contract monitoring
// wrappers script against.
package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"karousos.dev/karousos"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func serveSmall(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "run")
	code, _, stderr := runCLI(t, "serve", "-app", "stacks", "-n", "15", "-conc", "4", "-out", dir)
	if code != 0 {
		t.Fatalf("serve exited %d: %s", code, stderr)
	}
	return dir
}

func TestVerifyHonestRunExitsZero(t *testing.T) {
	dir := serveSmall(t)
	code, stdout, stderr := runCLI(t, "verify", "-dir", dir)
	if code != 0 {
		t.Fatalf("verify exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "AUDIT ACCEPTED") {
		t.Errorf("missing acceptance banner: %q", stdout)
	}
}

func TestVerifyFaultinjectedAdviceExitsTwo(t *testing.T) {
	dir := serveSmall(t)
	for _, spec := range []string{"truncate:3", "bit-flip:5", "opcount-inflate:1", "drop-log-entry:2"} {
		code, stdout, stderr := runCLI(t, "verify", "-dir", dir, "-faultinject", spec, "-reason-code")
		if code != 2 {
			t.Fatalf("%s: verify exited %d, want 2: %s%s", spec, code, stdout, stderr)
		}
		reason := strings.TrimSpace(stdout)
		if reason == "" {
			t.Fatalf("%s: no reason code printed", spec)
		}
		if !strings.Contains(stderr, "AUDIT REJECTED ["+reason+"]") {
			t.Errorf("%s: banner does not carry code %q: %q", spec, reason, stderr)
		}
	}
}

func TestFaultinjectSubcommandThenVerify(t *testing.T) {
	dir := serveSmall(t)
	mut := filepath.Join(t.TempDir(), "advice-mut.bin")
	code, stdout, stderr := runCLI(t, "faultinject", "-dir", dir, "-op", "length-inflate:9", "-out", mut)
	if code != 0 {
		t.Fatalf("faultinject exited %d: %s%s", code, stdout, stderr)
	}
	// In-place corruption: default -out overwrites the run's advice.
	code, _, stderr = runCLI(t, "faultinject", "-dir", dir, "-op", "splice:4")
	if code != 0 {
		t.Fatalf("in-place faultinject exited %d: %s", code, stderr)
	}
	code, _, stderr = runCLI(t, "verify", "-dir", dir)
	if code != 2 {
		t.Fatalf("verify of corrupted run exited %d, want 2: %s", code, stderr)
	}
}

func TestTamperedTraceRejectsWithOutputMismatch(t *testing.T) {
	dir := serveSmall(t)
	if code, _, stderr := runCLI(t, "tamper", "-dir", dir); code != 0 {
		t.Fatalf("tamper exited %d: %s", code, stderr)
	}
	code, stdout, _ := runCLI(t, "verify", "-dir", dir, "-reason-code")
	if code != 2 {
		t.Fatalf("verify exited %d, want 2", code)
	}
	if got := strings.TrimSpace(stdout); got != "OutputMismatch" {
		t.Errorf("reason code %q, want OutputMismatch", got)
	}
}

func TestInternalErrorsExitOne(t *testing.T) {
	if code, _, _ := runCLI(t, "verify", "-dir", filepath.Join(t.TempDir(), "nonexistent")); code != 1 {
		t.Errorf("missing run dir exited %d, want 1", code)
	}
	if code, _, _ := runCLI(t, "no-such-subcommand"); code != 1 {
		t.Errorf("unknown subcommand exited %d, want 1", code)
	}
	dir := serveSmall(t)
	if code, _, _ := runCLI(t, "verify", "-dir", dir, "-faultinject", "no-such-op:1"); code != 1 {
		t.Errorf("unknown operator exited %d, want 1", code)
	}
}

func TestFaultinjectList(t *testing.T) {
	code, stdout, _ := runCLI(t, "faultinject", "-list")
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	for _, name := range []string{"truncate", "bit-flip", "opcount-inflate", "cycle-write-order"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("catalogue listing missing %s", name)
		}
	}
}

// TestVerifyEpochDir: verify -epochs audits a karousos-auditd epoch log
// offline, accepting an honest log and rejecting one whose sealed advice
// was corrupted on disk.
func TestVerifyEpochDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "epochs")
	spec := karousos.StacksApp()
	if _, err := karousos.RunPipeline(context.Background(), spec,
		karousos.StacksWorkload(30, karousos.Mixed, 5),
		karousos.PipelineOptions{Dir: dir, EpochRequests: 10}); err != nil {
		t.Fatalf("pipeline: %v", err)
	}

	code, stdout, stderr := runCLI(t, "verify", "-epochs", dir)
	if code != 0 {
		t.Fatalf("verify -epochs exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "3 epochs through epoch 3") {
		t.Fatalf("verify output: %s", stdout)
	}

	blob, err := os.ReadFile(filepath.Join(dir, "ep000001.advice"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		blob[i] ^= 0xff
	}
	if err := os.WriteFile(filepath.Join(dir, "ep000001.advice"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = runCLI(t, "verify", "-epochs", dir, "-reason-code")
	if code != 2 {
		t.Fatalf("verify of corrupted epoch exited %d: %s", code, stderr)
	}
	if strings.TrimSpace(stdout) != "MalformedAdvice" {
		t.Fatalf("reason code %q, want MalformedAdvice", stdout)
	}
}
