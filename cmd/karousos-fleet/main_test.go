package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestMain doubles as the fleet's member executable: the accept scenario
// spawns os.Executable() — this very test binary — with the internal
// "__collector"/"__gateway" verbs, which are dispatched here before the
// test framework ever parses flags.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "__") {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestFleetAccept: the full supervised-fleet acceptance scenario — spawn
// collectors + gateway as real processes, SIGKILL one collector
// mid-epoch, verify the supervisor repairs it, drain, and audit — exits 0
// with the OK banner.
func TestFleetAccept(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet")
	}
	var out, errb bytes.Buffer
	code := run([]string{"accept", "-shards", "2", "-n", "40", "-epoch-requests", "5",
		"-seed", "11", "-root", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("accept exit %d:\n%s\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "FLEET ACCEPT OK") {
		t.Fatalf("no OK banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "restart 1/") {
		t.Fatalf("supervisor log shows no restart:\n%s", out.String())
	}
}

// TestBadArgs: unknown verbs and malformed member-role invocations are
// infrastructure errors, not panics.
func TestBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no args exit %d", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errb); code != 1 {
		t.Fatalf("unknown verb exit %d", code)
	}
	if code := run([]string{"__collector", "-app", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("collector role with unknown app exit %d", code)
	}
	if code := run([]string{"__collector", "-app", "wiki"}, &out, &errb); code != 1 {
		t.Fatalf("collector role without -dir exit %d", code)
	}
	if code := run([]string{"__gateway"}, &out, &errb); code != 1 {
		t.Fatalf("gateway role without -root/-backends exit %d", code)
	}
	if code := run([]string{"accept", "-shards", "0"}, &out, &errb); code != 1 {
		t.Fatalf("accept with zero shards exit %d", code)
	}
}
