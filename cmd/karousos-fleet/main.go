// karousos-fleet runs the sharded audit plane as a supervised fleet of
// real OS processes:
//
//	karousos-fleet serve -app wiki -shards 4 -root shards -addr :8081
//	    writes the shard map, spawns one collector process per shard plus
//	    the gateway (all re-execs of this binary), health-checks every
//	    member over /readyz, restarts crashed members from their durable
//	    epoch logs within a restart budget, and on SIGTERM stops the
//	    gateway first and then lets every collector drain and seal;
//
//	karousos-fleet accept -shards 3 -n 60
//	    is the supervision acceptance scenario: spawn the fleet, drive a
//	    burst through the gateway, SIGKILL one collector mid-epoch, prove
//	    the supervisor repairs it and the gateway's /readyz recovers, then
//	    drain, seal, and audit the topology — exiting 0 only if every
//	    robustness invariant held (no lost acks, no false accusation,
//	    lane-count-invariant verdicts).
//
// The supervisor adds no trust: a member that dies is restarted on the
// same epoch-log directory and its own crash recovery seals whatever the
// death stranded as Degraded, which the audit grades Unauditable — the
// fleet buys liveness, never a cover story.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/fleet"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment explicit so tests drive the CLI
// in-process and assert on exit codes. The "__collector" and "__gateway"
// verbs are the fleet's internal member roles — the supervisor re-execs
// this same binary with them, so a fleet needs exactly one executable.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	switch args[0] {
	case "serve":
		return serveCmd(args[1:], stdout, stderr)
	case "accept":
		return acceptCmd(args[1:], stdout, stderr)
	case "__collector":
		return collectorRole(args[1:], stdout, stderr)
	case "__gateway":
		return gatewayRole(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: karousos-fleet serve|accept [flags]

  serve   supervise a live fleet: one collector process per shard plus the
          gateway; SIGTERM stops the gateway first, then drains and seals
          every collector
  accept  spawn a fleet, kill one collector mid-burst, verify supervised
          recovery and a clean post-drain audit; exits 0 if every
          invariant held, 2 on a violation, 1 on runner breakage`)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "karousos-fleet:", err)
	return 1
}

// collectorRole is one shard's collector process: a collectorhttp server
// whose SIGTERM handler drains in-flight requests and seals the open
// epoch, so a supervised stop strands nothing.
func collectorRole(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("__collector", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application")
	dir := fs.String("dir", "", "epoch log directory")
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	epochReqs := fs.Int("epoch-requests", 50, "seal threshold")
	seed := fs.Int64("seed", 42, "scheduler seed")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	if *dir == "" {
		return fail(stderr, errors.New("__collector needs -dir"))
	}
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          spec,
		Dir:           *dir,
		EpochRequests: *epochReqs,
		Seed:          *seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		return fail(stderr, err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           col.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			hs.Close()
		}
	}()
	fmt.Fprintf(stdout, "collector: %s on %s, log %s\n", *app, *addr, *dir)
	err = hs.ListenAndServe()
	// Close seals the open epoch — the supervised drain must not leave
	// recorded requests unsealed (unauditable-by-absence).
	if closeErr := col.Close(); closeErr != nil {
		return fail(stderr, closeErr)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "collector: sealed %d epochs, served %d requests\n",
		col.Status().SealedEpochs, col.Status().Served)
	return 0
}

// gatewayRole is the fleet's front-door process: the resilient gateway
// over the fixed backend list the supervisor handed it.
func gatewayRole(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("__gateway", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "topology root holding shardmap.json")
	backends := fs.String("backends", "", "comma-separated shard backend URLs")
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	perTry := fs.Duration("per-try-timeout", 0, "per-attempt proxy budget (0 = default)")
	breakerOpenFor := fs.Duration("breaker-open-for", 0, "open-circuit window (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *root == "" || *backends == "" {
		return fail(stderr, errors.New("__gateway needs -root and -backends"))
	}
	m, err := shard.ReadMap(*root)
	if err != nil {
		return fail(stderr, err)
	}
	gw, err := gateway.New(gateway.Config{
		Map:      m,
		Backends: strings.Split(*backends, ","),
		Tuning:   gateway.Tuning{PerTryTimeout: *perTry, BreakerOpenFor: *breakerOpenFor},
	})
	if err != nil {
		return fail(stderr, err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			hs.Close()
		}
	}()
	fmt.Fprintf(stdout, "gateway: fronting %d shards on %s\n", m.Shards, *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(stderr, err)
	}
	return 0
}

// freePorts reserves n distinct loopback ports by binding :0 and closing.
// The classic race (another process grabbing the port before the member
// binds it) is accepted: members that lose the race crash on bind and the
// readiness wait reports it.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// fleetSpec is everything needed to spawn one topology as processes.
type fleetSpec struct {
	root          string
	shards        int
	app           string
	epochRequests int
	seed          int64
	budget        int
	gatewayAddr   string // "" = pick a free port
	drain         time.Duration
}

// buildMembers writes the shard map and lays out the member list:
// collectors first, gateway last — Stop walks the list in reverse, so the
// front door dies before the shards it routes into.
func buildMembers(spec fleetSpec) ([]fleet.MemberSpec, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	m := shard.Map{Shards: spec.shards, KeyFields: []string{"id", "page"}}
	if err := shard.WriteMap(nil, spec.root, m); err != nil {
		return nil, "", err
	}
	need := spec.shards
	gwAddr := spec.gatewayAddr
	if gwAddr == "" {
		need++
	}
	ports, err := freePorts(need)
	if err != nil {
		return nil, "", err
	}
	if gwAddr == "" {
		gwAddr = fmt.Sprintf("127.0.0.1:%d", ports[spec.shards])
	}
	members := make([]fleet.MemberSpec, 0, spec.shards+1)
	backends := make([]string, 0, spec.shards)
	for s := 0; s < spec.shards; s++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[s])
		backends = append(backends, "http://"+addr)
		members = append(members, fleet.MemberSpec{
			Name: fmt.Sprintf("shard-%02d", s),
			Argv: []string{exe, "__collector",
				"-app", spec.app,
				"-dir", shard.Dir(spec.root, s),
				"-addr", addr,
				"-epoch-requests", strconv.Itoa(spec.epochRequests),
				"-seed", strconv.FormatInt(spec.seed+int64(s), 10),
				"-drain", spec.drain.String(),
			},
			ReadyURL:      "http://" + addr + "/readyz",
			RestartBudget: spec.budget,
		})
	}
	members = append(members, fleet.MemberSpec{
		Name: "gateway",
		Argv: []string{exe, "__gateway",
			"-root", spec.root,
			"-backends", strings.Join(backends, ","),
			"-addr", gwAddr,
			"-per-try-timeout", "1s",
			"-drain", spec.drain.String(),
		},
		ReadyURL:      "http://" + gwAddr + "/readyz",
		RestartBudget: spec.budget,
	})
	return members, "http://" + gwAddr, nil
}

func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application served by every shard")
	shards := fs.Int("shards", 4, "shard count")
	root := fs.String("root", "karousos-fleet", "topology root (shardmap.json + shard-NN logs)")
	addr := fs.String("addr", "127.0.0.1:8081", "gateway listen address")
	epochReqs := fs.Int("epoch-requests", 50, "per-shard seal threshold")
	seed := fs.Int64("seed", 42, "scheduler seed; shard s serves with seed+s")
	budget := fs.Int("restart-budget", fleet.DefaultRestartBudget, "restarts the supervisor pays per member")
	drain := fs.Duration("drain", 15*time.Second, "grace period for drain-and-seal on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	members, gwURL, err := buildMembers(fleetSpec{
		root: *root, shards: *shards, app: *app,
		epochRequests: *epochReqs, seed: *seed, budget: *budget,
		gatewayAddr: *addr, drain: *drain,
	})
	if err != nil {
		return fail(stderr, err)
	}
	sup, err := fleet.New(fleet.Config{Members: members, Output: stdout})
	if err != nil {
		return fail(stderr, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := sup.Start(ctx); err != nil {
		sup.Stop(*drain) //karousos:errladder-ok the start failure is the error that surfaces
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "fleet up: %d collectors + gateway at %s (SIGTERM to drain and seal)\n",
		*shards, gwURL)
	<-ctx.Done()
	stop()
	if err := sup.Stop(*drain); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, "fleet stopped: every member drained and sealed")
	return 0
}

func acceptCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("accept", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shards := fs.Int("shards", 3, "shard count")
	n := fs.Int("n", 60, "requests to drive through the gateway")
	epochReqs := fs.Int("epoch-requests", 5, "per-shard seal threshold")
	seed := fs.Int64("seed", 11, "workload and scheduler seed")
	root := fs.String("root", "", "topology root (default: a fresh temp dir)")
	killAt := fs.Int("kill-at", -1, "SIGKILL the victim collector at the first mid-epoch request index >= this (-1 = n/3)")
	drain := fs.Duration("drain", 10*time.Second, "drain-and-seal grace on stop")
	verbose := fs.Bool("v", false, "print the full result as JSON")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *shards <= 0 || *n <= 0 || *epochReqs <= 0 {
		return fail(stderr, errors.New("accept needs positive -shards, -n and -epoch-requests"))
	}
	if *root == "" {
		tmp, err := os.MkdirTemp("", "karousos-fleet-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*root = tmp
	}
	if *killAt < 0 {
		*killAt = *n / 3
	}
	res, err := runAccept(*root, *shards, *n, *epochReqs, *seed, *killAt, *drain, stdout)
	if err != nil {
		return fail(stderr, err)
	}
	if *verbose {
		blob, _ := json.MarshalIndent(res, "", "  ") //karousos:errladder-ok display of a struct we just built
		fmt.Fprintln(stdout, string(blob))
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(stdout, "FLEET ACCEPT: INVARIANT VIOLATED (%d):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  - %s\n", v)
		}
		return 2
	}
	fmt.Fprintf(stdout, "FLEET ACCEPT OK: served=%d degraded=%d restarts=%d accepted=%d unauditable=%d — kill, supervised restart, drain and audit all held\n",
		res.Served, res.Degraded, res.VictimRestarts, res.Accepted, res.Unauditable)
	return 0
}

// acceptResult is what the acceptance scenario observed.
type acceptResult struct {
	Served         int      `json:"served"`
	Degraded       int      `json:"degraded"`
	Shed           int      `json:"shed"`
	VictimRestarts int      `json:"victimRestarts"`
	Accepted       int      `json:"accepted"`
	Rejected       int      `json:"rejected"`
	Unauditable    int      `json:"unauditable"`
	Merge          string   `json:"merge"`
	Violations     []string `json:"violations,omitempty"`
}

// runAccept drives the supervised-fleet acceptance scenario. The error
// return is runner breakage; invariant breaches land in Violations.
func runAccept(root string, shards, n, epochReqs int, seed int64, killAt int, drain time.Duration, logw io.Writer) (*acceptResult, error) {
	members, gwURL, err := buildMembers(fleetSpec{
		root: root, shards: shards, app: "wiki",
		epochRequests: epochReqs, seed: seed, budget: fleet.DefaultRestartBudget,
		drain: drain,
	})
	if err != nil {
		return nil, err
	}
	sup, err := fleet.New(fleet.Config{
		Members:        members,
		Output:         logw,
		RestartBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sup.Start(ctx); err != nil {
		sup.Stop(drain) //karousos:errladder-ok the start failure is the error that surfaces
		return nil, err
	}
	stopped := false
	defer func() {
		if !stopped {
			sup.Stop(drain) //karousos:errladder-ok cleanup on the error path; the first error surfaces
		}
	}()

	res := &acceptResult{}
	violate := func(format string, a ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, a...))
	}
	victim := 1 % shards
	victimName := fmt.Sprintf("shard-%02d", victim)
	m, err := shard.ReadMap(root)
	if err != nil {
		return nil, err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	ackedByShard := make(map[int]map[string]bool)
	victimServed, killed := 0, false
	for i, req := range workload.Wiki(n, seed) {
		// The kill waits for "mid-epoch": the victim must hold a nonempty
		// open epoch so SIGKILL provably strands evidence for the audit to
		// grade Unauditable — a kill on a boundary would prove less.
		if !killed && i >= killAt && victimServed%epochReqs != 0 {
			if err := sup.Kill(victimName); err != nil {
				return res, fmt.Errorf("killing %s: %w", victimName, err)
			}
			killed = true
		}
		body, err := json.Marshal(map[string]any{"input": req.Input})
		if err != nil {
			return res, err
		}
		resp, err := client.Post(gwURL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			violate("request %d: gateway unreachable: %v", i, err)
			continue
		}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok scenario-side read; status carries the verdict
		resp.Body.Close()
		wantShard := m.ShardOf(value.Normalize(req.Input))
		switch resp.StatusCode {
		case http.StatusOK:
			res.Served++
			var out struct {
				RID string `json:"rid"`
			}
			if err := json.Unmarshal(blob, &out); err != nil || out.RID == "" {
				violate("request %d: 200 with no rid: %v", i, err)
				break
			}
			if ackedByShard[wantShard] == nil {
				ackedByShard[wantShard] = map[string]bool{}
			}
			ackedByShard[wantShard][out.RID] = true
			if wantShard == victim {
				victimServed++
			}
		case http.StatusTooManyRequests:
			res.Shed++
		case http.StatusServiceUnavailable:
			res.Degraded++
			if wantShard != victim {
				violate("request %d: survivor shard %d degraded (victim is %d)", i, wantShard, victim)
			}
		default:
			violate("request %d: status %d — a member death must surface as 200/429/503", i, resp.StatusCode)
		}
	}
	if !killed {
		violate("the victim was never killed: kill-at %d left no mid-epoch window in %d requests", killAt, n)
	}

	// Supervised recovery: the dead member must come back within its
	// budget and the gateway's AND-/readyz must flip back to 200.
	recoverDeadline := time.Now().Add(30 * time.Second)
	for killed {
		st := memberStatus(sup, victimName)
		if st.Running && st.Ready {
			res.VictimRestarts = st.Restarts
			if st.Restarts == 0 {
				violate("%s is up but the supervisor recorded no restart", victimName)
			}
			break
		}
		if time.Now().After(recoverDeadline) {
			violate("%s never recovered: %+v", victimName, st)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if readyCode := getStatus(client, gwURL+"/readyz"); readyCode != http.StatusOK {
		violate("gateway /readyz = %d after recovery, want 200", readyCode)
	}

	// Drain and seal: gateway first, then every collector's SIGTERM path
	// seals its open epoch.
	stopped = true
	if err := sup.Stop(drain); err != nil {
		violate("graceful stop escalated: %v", err)
	}

	// Invariant: acked⊆sealed per shard — SIGKILL included, every RID a
	// client saw 200 for is in a sealed epoch of the shard that served it.
	for s := 0; s < shards; s++ {
		if len(ackedByShard[s]) == 0 {
			continue
		}
		sealed := map[string]bool{}
		dirS := shard.Dir(root, s)
		manifests, err := epochlog.ListSealed(dirS)
		if err != nil {
			return res, err
		}
		for _, man := range manifests {
			tr, _, _, err := epochlog.ReadSealed(dirS, man.Seq, epochlog.Options{})
			if err != nil {
				return res, err
			}
			for _, rid := range tr.RIDs() {
				sealed[rid] = true
			}
		}
		for rid := range ackedByShard[s] {
			if !sealed[rid] {
				violate("shard %d: acked rid %s missing from the sealed log", s, rid)
			}
		}
	}

	// The post-mortem audit: verdicts must be lane-count-invariant, the
	// victim's SIGKILL grades Unauditable at worst, and nothing is accused.
	var keys []string
	for _, lanes := range []int{shards, 1} {
		sh, err := auditd.NewSharded(auditd.ShardedConfig{
			Root: root, Lanes: lanes, Limits: verifier.DefaultLimits(),
		})
		if err != nil {
			return res, err
		}
		out, err := sh.Audit(context.Background())
		if err != nil {
			return res, err
		}
		keys = append(keys, verdictKey(out))
		if lanes != shards {
			continue
		}
		res.Merge = string(out.Merge.Code)
		victimUnauditable := false
		for _, rep := range out.Shards {
			for _, v := range rep.Verdicts {
				switch v.Code {
				case "":
					res.Accepted++
				case core.RejectUnauditable:
					res.Unauditable++
					if rep.Shard == victim {
						victimUnauditable = true
					} else {
						violate("surviving shard %d graded unauditable: epoch %d %s", rep.Shard, v.Epoch, v.Reason)
					}
				default:
					res.Rejected++
					violate("false reject: shard %d epoch %d [%s] %s", rep.Shard, v.Epoch, v.Code, v.Reason)
				}
			}
		}
		if killed && !victimUnauditable {
			violate("victim shard %d has no unauditable epoch: the SIGKILL left no stranded evidence to grade", victim)
		}
		switch out.Merge.Code {
		case "", core.RejectUnauditable:
		default:
			violate("combined verdict accuses after a process death: [%s] %s", out.Merge.Code, out.Merge.Reason)
		}
	}
	if keys[0] != keys[1] {
		violate("lane-count divergence:\n%d lanes: %s\n1 lane:  %s", shards, keys[0], keys[1])
	}
	return res, nil
}

// memberStatus finds one member's status by name.
func memberStatus(sup *fleet.Supervisor, name string) fleet.MemberStatus {
	for _, st := range sup.Status() {
		if st.Name == name {
			return st
		}
	}
	return fleet.MemberStatus{Name: name}
}

// getStatus GETs a URL and returns the status code (0 on transport error).
func getStatus(client *http.Client, url string) int {
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body) //karousos:errladder-ok health probe; the status code is the answer
	resp.Body.Close()
	return resp.StatusCode
}

// verdictKey reduces a sharded audit to a comparable string: per-shard
// lane codes, every per-epoch verdict, the merge and the work stats —
// exactly what must be bit-identical across lane counts.
func verdictKey(res auditd.ShardedResult) string {
	var b strings.Builder
	for _, rep := range res.Shards {
		fmt.Fprintf(&b, "shard%d[%s]:", rep.Shard, rep.Code)
		for _, v := range rep.Verdicts {
			fmt.Fprintf(&b, "%d=%s;", v.Epoch, v.Code)
		}
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "merge=%s conflicts=%d stats=%+v", res.Merge.Code, len(res.Merge.Conflicts), res.Stats)
	return b.String()
}
