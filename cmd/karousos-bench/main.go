// karousos-bench regenerates the tables behind every figure of the paper's
// evaluation (Figures 6–12), plus Figure 13 — this module's own sustained
// record-throughput panel (group commit vs per-request fsync, DESIGN.md
// §14). Without flags it reproduces the paper's setup: 600-request
// workloads (server-overhead panels warm up on the first 120), concurrency
// swept over 1–60, medians of 3 trials.
//
// Usage:
//
//	karousos-bench                  # all figures
//	karousos-bench -fig 7           # one figure
//	karousos-bench -fig 13          # record throughput only
//	karousos-bench -requests 300 -trials 1 -conc 1,30   # a quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"karousos.dev/karousos/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 6..15 or all")
		requests = flag.Int("requests", 600, "requests per workload")
		warmup   = flag.Int("warmup", 120, "warm-up requests for server-overhead panels")
		trials   = flag.Int("trials", 3, "trials per data point (median reported)")
		conc     = flag.String("conc", "1,15,30,45,60", "comma-separated concurrency levels")
		seed     = flag.Int64("seed", 42, "base seed for workloads and schedulers")
		workers  = flag.String("workers", "", "comma-separated audit worker levels for the Figure-7 worker sweep (default: 1,2,4,GOMAXPROCS)")

		baselineOut    = flag.String("baseline-out", "", "write a performance baseline (ns/op, allocs/op) to this JSON file and exit")
		baselineUpdate = flag.String("baseline-update", "", "measure only the benchmarks missing from this baseline JSON file, merge them in, and exit")
		baselineCheck  = flag.String("baseline-check", "", "check the working tree against a committed baseline JSON file and exit non-zero on regression")
		baselineTol    = flag.Float64("baseline-tolerance", 0.25, "fractional ns/op slowdown allowed by -baseline-check")
	)
	flag.Parse()

	if *baselineOut != "" || *baselineUpdate != "" || *baselineCheck != "" {
		if *baselineOut != "" {
			if err := writeBaseline(*baselineOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *baselineUpdate != "" {
			if err := updateBaseline(*baselineUpdate); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *baselineCheck != "" {
			if err := checkBaseline(*baselineCheck, *baselineTol); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	cfg := experiments.Config{
		Requests: *requests,
		Warmup:   *warmup,
		Trials:   *trials,
		Seed:     *seed,
	}
	for _, part := range strings.Split(*conc, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			fmt.Fprintf(os.Stderr, "bad concurrency level %q\n", part)
			os.Exit(2)
		}
		cfg.Conc = append(cfg.Conc, c)
	}
	if *workers != "" {
		for _, part := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "bad worker level %q\n", part)
				os.Exit(2)
			}
			cfg.Workers = append(cfg.Workers, w)
		}
	}
	if cfg.Warmup >= cfg.Requests {
		fmt.Fprintln(os.Stderr, "warmup must be smaller than requests")
		os.Exit(2)
	}

	var figs []int
	if *fig == "all" {
		figs = experiments.Figures()
	} else {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad figure %q\n", *fig)
			os.Exit(2)
		}
		figs = []int{n}
	}

	for _, n := range figs {
		fmt.Printf("==== Figure %d ====\n", n)
		for _, panel := range experiments.Figure(n, cfg) {
			printPanel(panel)
		}
	}
}

func printPanel(p experiments.Panel) {
	fmt.Printf("\n-- %s --\n", p.Title)
	widths := make([]int, len(p.Header))
	for i, h := range p.Header {
		widths[i] = len(h)
	}
	for _, row := range p.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	printRow(p.Header)
	for _, row := range p.Rows {
		printRow(row)
	}
	fmt.Println()
}
