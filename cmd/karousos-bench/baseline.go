// Baseline mode: karousos-bench can emit a committed performance baseline
// (BENCH_baseline.json) and later check the working tree against it, so CI
// catches ns/op regressions without running the full figure sweeps.
//
//	karousos-bench -baseline-out BENCH_baseline.json     # regenerate
//	karousos-bench -baseline-check BENCH_baseline.json   # gate (CI)
//
// The baseline deliberately records only scale-free quantities (ns/op,
// allocs/op) plus the config that produced them; no timestamps or host
// names, so regenerating on the same machine is a stable diff.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/experiments"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// baselineRequests is smaller than the figure sweeps' default so the CI
// bench-smoke job stays cheap; the shapes (and therefore regressions in
// them) are preserved.
const baselineRequests = 120

type baselineResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baselineFile struct {
	Config struct {
		Requests   int `json:"requests"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"config"`
	Results map[string]baselineResult `json:"results"`
}

type baselineBench struct {
	name string
	fn   func(b *testing.B)
}

func baselineWorkload(app string, mix workload.Mix) (harness.AppSpec, []server.Request) {
	switch app {
	case "motd":
		return harness.MOTDApp(), workload.MOTD(baselineRequests, mix, 1)
	case "stacks":
		return harness.StacksApp(), workload.Stacks(baselineRequests, mix, 1, workload.DefaultStacksOptions())
	case "wiki":
		return harness.WikiApp(), workload.Wiki(baselineRequests, 1)
	}
	panic("unknown app " + app)
}

// baselineServe mirrors the Figure-6 panels: serving cost with Karousos
// advice collection on.
func baselineServe(app string, mix workload.Mix) func(*testing.B) {
	return func(b *testing.B) {
		warmup := baselineRequests / 5
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec, reqs := baselineWorkload(app, mix)
			if _, err := harness.ServeWarm(spec, reqs, warmup, 30, int64(i), harness.CollectKarousos); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// baselineVerify mirrors the Figure-7 panels: audit turnaround at the given
// worker count (0 = GOMAXPROCS, the production default; 1 = the sequential
// reference the parallel engine must not regress).
func baselineVerify(app string, mix workload.Mix, auditWorkers int) func(*testing.B) {
	return func(b *testing.B) {
		spec, reqs := baselineWorkload(app, mix)
		run, err := harness.Serve(spec, reqs, 30, 42, harness.CollectKarousos)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := harness.VerifyWith(spec, run.Trace, run.Karousos, harness.VerifyOptions{Workers: auditWorkers})
			if v.Err != nil {
				b.Fatal(v.Err)
			}
		}
	}
}

func baselineBenches() []baselineBench {
	return []baselineBench{
		{"fig6a-motd-write-heavy-server-karousos", baselineServe("motd", workload.WriteHeavy)},
		{"fig6b-stacks-read-heavy-server-karousos", baselineServe("stacks", workload.ReadHeavy)},
		{"fig6c-wiki-server-karousos", baselineServe("wiki", workload.Mixed)},
		{"fig7a-motd-write-heavy-verify-karousos", baselineVerify("motd", workload.WriteHeavy, 0)},
		{"fig7b-stacks-read-heavy-verify-karousos", baselineVerify("stacks", workload.ReadHeavy, 0)},
		{"fig7c-wiki-verify-karousos", baselineVerify("wiki", workload.Mixed, 0)},
		{"fig7c-wiki-verify-karousos-workers-1", baselineVerify("wiki", workload.Mixed, 1)},
		{"audit-components/advice-decode", func(b *testing.B) {
			spec, reqs := baselineWorkload("wiki", workload.Mixed)
			run, err := harness.Serve(spec, reqs, 30, 42, harness.CollectKarousos)
			if err != nil {
				b.Fatal(err)
			}
			wire := run.Karousos.MarshalBinary()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := advice.UnmarshalBinary(wire); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"audit-components/advice-encode", func(b *testing.B) {
			spec, reqs := baselineWorkload("wiki", workload.Mixed)
			run, err := harness.Serve(spec, reqs, 30, 42, harness.CollectKarousos)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = run.Karousos.MarshalBinary()
			}
		}},
		{"audit-components/full-audit", baselineVerify("wiki", workload.Mixed, 0)},
		{"record/per-request-fsync-c32", baselineRecord(false, 32)},
		{"record/group-commit-c32", baselineRecord(true, 32)},
		{"shard-audit/shards-1", baselineShardAudit(1)},
		{"shard-audit/shards-4", baselineShardAudit(4)},
		{"shard-audit/shards-8", baselineShardAudit(8)},
		{"memo-audit/cold", baselineMemoAudit(0)},
		{"memo-audit/warm", baselineMemoAudit(256 << 20)},
	}
}

// baselineMemoAudit mirrors the Figure-15 panel: full audit turnaround over
// a pure-recurring feeds steady-state log, cold (memoBytes 0, the cache
// disabled) or warm (the cache carried across epochs within each op's
// single auditor pass). The log is built once outside the timer; every op
// grades it from scratch with a fresh auditor, so cold vs warm isolates
// exactly what cross-epoch deduplicated re-execution saves.
func baselineMemoAudit(memoBytes int) func(*testing.B) {
	return func(b *testing.B) {
		const epochs = 8
		dir, err := os.MkdirTemp("", "karousos-memo-bench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if err := experiments.BuildMemoLog(dir, epochs, baselineRequests/epochs, 1.0, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := auditd.New(auditd.Config{Dir: dir, AuditWorkers: 1, MemoMaxBytes: memoBytes})
			if err != nil {
				b.Fatal(err)
			}
			n, err := a.RunOnce(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if st := a.Status(); n != epochs || st.Accepted != epochs {
				b.Fatalf("graded %d/%d epochs, accepted %d", n, epochs, st.Accepted)
			}
		}
	}
}

// baselineShardAudit mirrors the Figure-14 panel: full shard-parallel
// audit turnaround (one lane per shard, per-epoch workers pinned to 1)
// over a sealed wiki topology built once outside the timer. No
// checkpoints, so every op grades the whole topology from scratch.
func baselineShardAudit(shards int) func(*testing.B) {
	return func(b *testing.B) {
		root, err := os.MkdirTemp("", "karousos-shard-bench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(root)
		if err := experiments.BuildShardTopology(root, shards, baselineRequests, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sh, err := auditd.NewSharded(auditd.ShardedConfig{
				Root:         root,
				Limits:       verifier.DefaultLimits(),
				AuditWorkers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sh.Audit(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if !res.Accepted() {
				b.Fatalf("honest topology rejected: [%s] %s", res.Merge.Code, res.Merge.Reason)
			}
		}
	}
}

// baselineRecord mirrors the Figure-13 panel: durable-append throughput of
// the epoch log at one commit discipline and concurrency level. One op is
// a fixed batch of events, so ns/op regressions gate the record path the
// same way the serve/verify entries gate theirs.
func baselineRecord(group bool, conc int) func(*testing.B) {
	return func(b *testing.B) {
		const events = 2048
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RecordThroughput(group, conc, events); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func measureBaseline(bb baselineBench) (baselineResult, error) {
	r := testing.Benchmark(bb.fn)
	if r.N == 0 {
		return baselineResult{}, fmt.Errorf("benchmark %s failed", bb.name)
	}
	return baselineResult{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}, nil
}

func writeBaseline(path string) error {
	var f baselineFile
	f.Config.Requests = baselineRequests
	f.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	f.Results = make(map[string]baselineResult)
	for _, bb := range baselineBenches() {
		res, err := measureBaseline(bb)
		if err != nil {
			return err
		}
		f.Results[bb.name] = res
		fmt.Printf("%-45s %14.0f ns/op %10d allocs/op\n", bb.name, res.NsPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// updateBaseline measures only the benchmarks a committed baseline is
// missing and merges them in, leaving every existing entry byte-identical.
// This is how a PR that adds benchmarks lands their baseline numbers
// without re-measuring (and so silently re-centering) everyone else's.
func updateBaseline(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Results == nil {
		f.Results = make(map[string]baselineResult)
	}
	added := 0
	for _, bb := range baselineBenches() {
		if _, ok := f.Results[bb.name]; ok {
			continue
		}
		res, err := measureBaseline(bb)
		if err != nil {
			return err
		}
		f.Results[bb.name] = res
		added++
		fmt.Printf("%-45s %14.0f ns/op %10d allocs/op (new)\n", bb.name, res.NsPerOp, res.AllocsPerOp)
	}
	if added == 0 {
		fmt.Println("baseline already covers every benchmark; nothing to do")
		return nil
	}
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// checkBaseline compares the working tree against a committed baseline and
// returns an error on any ns/op regression beyond the tolerance. Benchmarks
// are noisy, especially on shared CI runners, so a candidate that trips the
// gate is re-measured (up to three attempts total) and judged on its best
// run; allocs/op drift is reported but does not fail the gate — the
// Workers=1 parity tests own the hard allocation bound.
func checkBaseline(path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if base.Config.Requests != baselineRequests {
		return fmt.Errorf("baseline was recorded at %d requests; this binary measures %d — regenerate with -baseline-out",
			base.Config.Requests, baselineRequests)
	}
	if base.Config.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		fmt.Printf("note: baseline recorded at GOMAXPROCS=%d, running at %d; parallel-audit points may differ\n",
			base.Config.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}

	names := make([]string, 0, len(base.Results))
	for name := range base.Results {
		names = append(names, name)
	}
	sort.Strings(names)

	benches := make(map[string]baselineBench)
	for _, bb := range baselineBenches() {
		benches[bb.name] = bb
	}

	var failures []string
	for _, name := range names {
		bb, ok := benches[name]
		if !ok {
			fmt.Printf("note: baseline entry %q has no benchmark in this binary; skipping\n", name)
			continue
		}
		want := base.Results[name]
		limit := want.NsPerOp * (1 + tolerance)
		var best baselineResult
		pass := false
		for attempt := 1; attempt <= 3; attempt++ {
			got, err := measureBaseline(bb)
			if err != nil {
				return err
			}
			if attempt == 1 || got.NsPerOp < best.NsPerOp {
				best = got
			}
			if best.NsPerOp <= limit {
				pass = true
				break
			}
		}
		status := "ok"
		if !pass {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.0f)", name, best.NsPerOp, want.NsPerOp, limit))
		}
		fmt.Printf("%-45s %14.0f ns/op (baseline %14.0f, %+6.1f%%) %s\n",
			name, best.NsPerOp, want.NsPerOp, 100*(best.NsPerOp-want.NsPerOp)/want.NsPerOp, status)
		if want.AllocsPerOp > 0 && best.AllocsPerOp > want.AllocsPerOp+want.AllocsPerOp/10 {
			fmt.Printf("note: %s allocs/op grew %d -> %d\n", name, want.AllocsPerOp, best.AllocsPerOp)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "regression: "+f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), 100*tolerance)
	}
	return nil
}
