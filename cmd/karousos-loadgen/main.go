// karousos-loadgen is the open-loop load generator for the collector's
// serving path (DESIGN.md §14):
//
//	karousos-loadgen -n 2000 -rate 500 -app motd
//	    boots a self-contained collector on loopback, offers 2000 arrivals
//	    at 500 req/s, and prints the latency/shed ledger;
//
//	karousos-loadgen -url http://host:8080 -n 2000 -rate 500
//	    drives an already-running collector instead;
//
//	karousos-loadgen -target http://gateway:8081 -n 2000 -json
//	    drives a sharded topology through its gateway: the ledger is
//	    split per shard (X-Karousos-Shard), and 503s carrying Retry-After
//	    count as partial-shard degradation rather than server errors;
//
//	karousos-loadgen -n 2000 -audit
//	    after the run, re-audits every sealed epoch at verifier
//	    parallelism 1 and 4 and requires both passes to accept with
//	    identical work counters;
//
//	karousos-loadgen -n 2000 -repeat-mix 0.8
//	    rewrites 80% of arrivals to the app's fixed recurring read-only
//	    shapes — the steady-state workload whose epochs repeat, so a
//	    warm `karousos-auditd -memo` pass serves them from its cache.
//
// Exit codes: 0 every arrival resolved to 200/429/local-shed (and, with
// -audit, everything audited clean and identically); 2 an overload or
// audit invariant failed; 1 infrastructure error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"karousos.dev/karousos/internal/chaos"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/loadgen"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "karousos-loadgen:", err)
	return 1
}

// run is main with its environment explicit so tests drive the CLI
// in-process and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("karousos-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "collector base URL; empty boots a self-contained collector on loopback")
	target := fs.String("target", "", "gateway base URL: drive a sharded topology and split the ledger per shard (X-Karousos-Shard)")
	dir := fs.String("dir", "", "epoch log directory for the self-contained collector (default: a fresh temp dir)")
	app := fs.String("app", "motd", "workload application: motd, stacks, wiki, feeds")
	mix := fs.String("mix", "mixed", "read/write mix: read-heavy, write-heavy, mixed")
	n := fs.Int("n", 1000, "number of arrivals to offer")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in req/s (0 = pure burst)")
	outstanding := fs.Int("outstanding", 64, "max concurrently outstanding requests; due arrivals past it shed locally")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	repeatMix := fs.Float64("repeat-mix", 0, "fraction [0,1] of arrivals rewritten to the app's fixed recurring read-only shapes — the steady-state workload behind the warm memo-cache claim")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	slowEvery := fs.Int("slow-every", 0, "trickle every Nth request body through a slow chunked reader (0 = never)")
	epochReqs := fs.Int("epoch-requests", 50, "self-contained collector: seal after this many requests")
	commit := fs.String("commit", "group", "self-contained collector: commit mode (group, per-request, async)")
	maxInflight := fs.Int("max-inflight", 0, "self-contained collector: admission window (0 = default)")
	maxQueuedBytes := fs.Int64("max-queued-bytes", 0, "self-contained collector: queued-bytes ceiling (0 = default)")
	audit := fs.Bool("audit", false, "after the run, re-audit the sealed log at workers 1 and 4 and require identical clean verdicts (self-contained mode only)")
	asJSON := fs.Bool("json", false, "print the result as JSON instead of the text summary")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var mixVal workload.Mix
	switch *mix {
	case "read-heavy":
		mixVal = workload.ReadHeavy
	case "write-heavy":
		mixVal = workload.WriteHeavy
	case "mixed", "":
		mixVal = workload.Mixed
	default:
		return fail(stderr, fmt.Errorf("unknown mix %q (read-heavy, write-heavy, mixed)", *mix))
	}

	if *target != "" && *url != "" {
		return fail(stderr, fmt.Errorf("-target and -url are exclusive: a run drives either the gateway or one collector"))
	}
	if *target != "" && *audit {
		return fail(stderr, fmt.Errorf("-audit needs the self-contained collector; a gateway's per-shard logs are audited with karousos-auditd -shards"))
	}
	base := *url
	if *target != "" {
		base = *target
	}
	logDir := *dir
	var col *collectorhttp.Collector
	if base == "" {
		// Self-contained mode: boot a collector on loopback so one command
		// is a full load story — generate, shed, seal, (optionally) audit.
		spec, err := harness.SpecByName(*app)
		if err != nil {
			return fail(stderr, err)
		}
		if logDir == "" {
			tmp, err := os.MkdirTemp("", "karousos-loadgen-")
			if err != nil {
				return fail(stderr, err)
			}
			defer os.RemoveAll(tmp)
			logDir = tmp
		}
		col, err = collectorhttp.New(collectorhttp.Config{
			Spec:           spec,
			Dir:            logDir,
			EpochRequests:  *epochReqs,
			Seed:           *seed,
			Limits:         verifier.DefaultLimits(),
			Commit:         collectorhttp.CommitMode(*commit),
			MaxInflight:    *maxInflight,
			MaxQueuedBytes: *maxQueuedBytes,
		})
		if err != nil {
			return fail(stderr, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			col.Close()
			return fail(stderr, err)
		}
		hs := &http.Server{Handler: col.Handler()}
		go func() { hs.Serve(ln) }() //karousos:errladder-ok Serve returns ErrServerClosed on the deferred Close
		defer hs.Close()
		defer col.Close()
		base = "http://" + ln.Addr().String()
	} else if *audit {
		return fail(stderr, fmt.Errorf("-audit needs the self-contained collector (drop -url); an external log directory is not re-audited in place"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:        base,
		App:            *app,
		Mix:            mixVal,
		Requests:       *n,
		Rate:           *rate,
		MaxOutstanding: *outstanding,
		Seed:           *seed,
		RepeatMix:      *repeatMix,
		Timeout:        *timeout,
		SlowEvery:      *slowEvery,
		TrackShards:    *target != "",
	})
	if err != nil {
		return fail(stderr, err)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return fail(stderr, err)
		}
	} else {
		fmt.Fprint(stdout, res.Summary())
	}

	code := 0
	if res.ServerErr != 0 || res.NetErr != 0 || res.OtherStatus != 0 {
		fmt.Fprintf(stderr, "LOADGEN INVARIANT VIOLATED: %d serverErr, %d netErr, %d other — overload must resolve to 200 or 429\n",
			res.ServerErr, res.NetErr, res.OtherStatus)
		code = 2
	}

	if *audit {
		// The collector must seal its tail before the log is re-audited;
		// Close is idempotent, so the deferred one is a no-op after this.
		if err := col.Close(); err != nil {
			return fail(stderr, err)
		}
		v1, s1, err := chaos.AuditSealedAt(ctx, logDir, 1)
		if err != nil {
			return fail(stderr, err)
		}
		_, s4, err := chaos.AuditSealedAt(ctx, logDir, 4)
		if err != nil {
			return fail(stderr, err)
		}
		for _, v := range v1 {
			if !v.Accepted() {
				fmt.Fprintf(stderr, "AUDIT REJECTED epoch %d [%s]: %s\n", v.Epoch, v.Code, v.Reason)
				code = 2
			}
		}
		if s1 != s4 {
			fmt.Fprintf(stderr, "AUDIT DIVERGED across worker counts: workers=1 %+v, workers=4 %+v\n", s1, s4)
			code = 2
		}
		if code == 0 {
			fmt.Fprintf(stdout, "AUDIT ACCEPTED: %d epochs, %d requests re-executed, identical at workers 1 and 4\n",
				len(v1), s1.Requests)
		}
	}
	if code == 0 {
		fmt.Fprintln(stdout, "LOADGEN OK")
	}
	return code
}
