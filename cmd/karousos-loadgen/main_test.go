package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSelfContainedBurstWithAudit is the CLI's acceptance loop: boot a
// collector, offer a burst past a tight admission window, then re-audit
// the sealed log at both worker counts.
func TestSelfContainedBurstWithAudit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-app", "motd", "-n", "64", "-seed", "9",
		"-epoch-requests", "16", "-max-inflight", "4", "-outstanding", "16",
		"-dir", t.TempDir(), "-audit",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"offered 64", "AUDIT ACCEPTED", "LOADGEN OK"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestJSONOutput checks the machine-readable path parses and balances.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-app", "wiki", "-n", "8", "-dir", t.TempDir(), "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"offered": 8`) {
		t.Fatalf("json output missing offered count:\n%s", stdout.String())
	}
}

// TestBadFlagsFail covers the refusal paths: unknown mix, and -audit
// against an external URL.
func TestBadFlagsFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mix", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown mix: exit %d", code)
	}
	if code := run([]string{"-url", "http://127.0.0.1:1", "-audit"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-audit with -url: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-audit") {
		t.Fatalf("stderr should explain the -audit restriction: %s", stderr.String())
	}
}
