package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/loadgen"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
)

// TestSelfContainedBurstWithAudit is the CLI's acceptance loop: boot a
// collector, offer a burst past a tight admission window, then re-audit
// the sealed log at both worker counts.
func TestSelfContainedBurstWithAudit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-app", "motd", "-n", "64", "-seed", "9",
		"-epoch-requests", "16", "-max-inflight", "4", "-outstanding", "16",
		"-dir", t.TempDir(), "-audit",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"offered 64", "AUDIT ACCEPTED", "LOADGEN OK"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestJSONOutput checks the machine-readable path parses and balances.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-app", "wiki", "-n", "8", "-dir", t.TempDir(), "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"offered": 8`) {
		t.Fatalf("json output missing offered count:\n%s", stdout.String())
	}
}

// TestTargetGatewayMode drives a local sharded topology through its
// gateway with -target: the run accepts, and the JSON ledger is split per
// shard with every shard of the topology represented.
func TestTargetGatewayMode(t *testing.T) {
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec:          harness.WikiApp(),
		Root:          t.TempDir(),
		Map:           shard.Map{Shards: 2, KeyFields: []string{"id", "page"}},
		EpochRequests: 10,
		Seed:          7,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{"-target", ts.URL, "-app", "wiki", "-n", "30", "-seed", "7", "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var res loadgen.Result
	// The ledger JSON is followed by the OK banner; decode the first value.
	if err := json.NewDecoder(bytes.NewReader(stdout.Bytes())).Decode(&res); err != nil {
		t.Fatalf("bad json: %v\n%s", err, stdout.String())
	}
	if res.OK != 30 {
		t.Fatalf("ok = %d, want 30: %+v", res.OK, res)
	}
	if len(res.Shards) != 2 || res.Shards["0"] == nil || res.Shards["1"] == nil {
		t.Fatalf("per-shard ledger missing shards: %+v", res.Shards)
	}
	if got := res.Shards["0"].OK + res.Shards["1"].OK; got != 30 {
		t.Fatalf("shard ledgers sum to %d, want 30", got)
	}
}

// TestBadFlagsFail covers the refusal paths: unknown mix, -audit against
// an external URL, and the -target exclusivity rules.
func TestBadFlagsFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mix", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown mix: exit %d", code)
	}
	if code := run([]string{"-url", "http://127.0.0.1:1", "-audit"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-audit with -url: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-audit") {
		t.Fatalf("stderr should explain the -audit restriction: %s", stderr.String())
	}
	if code := run([]string{"-target", "http://127.0.0.1:1", "-url", "http://127.0.0.1:2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-target with -url: exit %d", code)
	}
	if code := run([]string{"-target", "http://127.0.0.1:1", "-audit"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-target with -audit: exit %d", code)
	}
}

// TestRepeatMixFlag: the steady-state recurring workload serves, seals, and
// re-audits clean; an out-of-range fraction is refused up front.
func TestRepeatMixFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-app", "motd", "-n", "32", "-seed", "3", "-repeat-mix", "0.8",
		"-epoch-requests", "8", "-dir", t.TempDir(), "-audit",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "AUDIT ACCEPTED") {
		t.Fatalf("stdout missing audit acceptance:\n%s", stdout.String())
	}
	if code := run([]string{"-repeat-mix", "1.5", "-n", "4", "-dir", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatalf("repeat-mix 1.5: exit %d, want 1", code)
	}
}
