// Command karousos-vet is the multichecker for the repo's invariant
// analyzers (internal/analysis/all): detlint, errladder, rejectcode,
// advicesize, plus the interprocedural passes advicetaint, retrysound, and
// conclint (leaklint + locklint), plus validation of every //karousos:
// suppression directive.
//
// Usage:
//
//	karousos-vet [-checks detlint,locklint] [-json] [packages]
//	karousos-vet -list
//
// With no packages it defaults to ./... . The whole package set is loaded
// into one analysis.Program first, so the interprocedural facts (call
// graph, taint summaries) see every function once and are shared by all
// analyzers. A package that fails to load costs one "load" diagnostic, not
// the run: the remaining packages are still vetted.
//
// -json emits a JSON array of diagnostics instead of text, including
// suppressed findings with their suppression state, for tooling that wants
// to audit what the //karousos: directives are hiding.
//
// Exit status: 0 when the tree is clean (suppressed findings are clean),
// 1 when any diagnostic or load problem is reported, 2 on a driver failure
// (flag error, unknown check name, go list itself failing). CI runs
// `karousos-vet ./...` and fails the build on any nonzero status, so every
// finding is either fixed or carries a reviewed //karousos:<check>-ok
// <reason> directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/all"
	"karousos.dev/karousos/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	Check      string `json:"check"`
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("karousos-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	checks := fs.String("checks", "", "comma-separated analyzers or check names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array (includes suppressed findings)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all.Analyzers {
			name := a.Name
			if len(a.Checks) > 0 {
				name = fmt.Sprintf("%s (%s)", a.Name, strings.Join(a.Checks, ", "))
			}
			fmt.Fprintf(stdout, "%-24s %s\n", name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(stderr, "karousos-vet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, problems, err := load.PackagesDiag(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "karousos-vet: %v\n", err)
		return 2
	}

	// One Program over every loaded package: the interprocedural facts are
	// built once and shared by all analyzers and packages.
	pps := make([]*analysis.ProgramPackage, 0, len(pkgs))
	for _, p := range pkgs {
		pps = append(pps, &analysis.ProgramPackage{
			PkgPath: p.PkgPath, Fset: p.Fset, Files: p.Syntax,
			Pkg: p.Types, TypesInfo: p.TypesInfo,
		})
	}
	prog := analysis.NewProgram(pps)

	exit := 0
	var out []jsonDiag
	for _, pb := range problems {
		exit = 1
		if *asJSON {
			out = append(out, jsonDiag{Check: "load", Analyzer: "load", Message: pb.Error()})
		} else {
			fmt.Fprintf(stdout, "%s: [load] %v\n", pb.PkgPath, pb.Err)
		}
	}

	for _, p := range pkgs {
		var ds []analysis.Diagnostic
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer: a, Fset: p.Fset, Files: p.Syntax,
				Pkg: p.Types, TypesInfo: p.TypesInfo,
				Program:          prog,
				ReportSuppressed: *asJSON,
				Report:           func(d analysis.Diagnostic) { ds = append(ds, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "karousos-vet: %s over %s: %v\n", a.Name, p.PkgPath, err)
				return 2
			}
		}
		// Directive hygiene runs regardless of -checks: a typoed directive
		// must never silently suppress nothing.
		dirPass := &analysis.Pass{Fset: p.Fset, Files: p.Syntax, Pkg: p.Types, TypesInfo: p.TypesInfo}
		ds = append(ds, analysis.CheckDirectives(dirPass)...)

		analysis.SortDiagnostics(p.Fset, ds)
		for _, d := range ds {
			if !d.Suppressed {
				exit = 1
			}
			if *asJSON {
				out = append(out, jsonDiag{
					Check: d.Check, Analyzer: d.Analyzer,
					Pos: p.Fset.Position(d.Pos).String(), Message: d.Message,
					Suppressed: d.Suppressed,
				})
			} else {
				fmt.Fprintf(stdout, "%s: [%s] %s\n", p.Fset.Position(d.Pos), d.Check, d.Message)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonDiag{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "karousos-vet: encoding: %v\n", err)
			return 2
		}
	}
	return exit
}

// selectAnalyzers resolves -checks: each element may be an analyzer name
// or one of its check names (so -checks locklint selects conclint).
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return all.Analyzers, nil
	}
	var selected []*analysis.Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a := findAnalyzer(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer or check %q (known checks: %s)",
				name, strings.Join(analysis.KnownChecks(), ", "))
		}
		if !seen[a.Name] {
			seen[a.Name] = true
			selected = append(selected, a)
		}
	}
	return selected, nil
}

func findAnalyzer(name string) *analysis.Analyzer {
	for _, a := range all.Analyzers {
		if a.Name == name {
			return a
		}
		for _, c := range a.Checks {
			if c == name {
				return a
			}
		}
	}
	return nil
}
