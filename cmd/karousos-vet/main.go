// Command karousos-vet is the multichecker for the repo's invariant
// analyzers (internal/analysis): detlint, advicesize, errladder, and
// rejectcode, plus validation of every //karousos: suppression directive.
//
// Usage:
//
//	karousos-vet [-checks detlint,errladder] [packages]
//	karousos-vet -list
//
// With no packages it defaults to ./... . Exit status: 0 when the tree is
// clean, 1 when any analyzer reports a diagnostic, 2 on a driver failure
// (load error, unknown check name). CI runs `karousos-vet ./...` and fails
// the build on any nonzero status, so every finding is either fixed or
// carries a reviewed //karousos:<check>-ok <reason> directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/advicesize"
	"karousos.dev/karousos/internal/analysis/detlint"
	"karousos.dev/karousos/internal/analysis/errladder"
	"karousos.dev/karousos/internal/analysis/load"
	"karousos.dev/karousos/internal/analysis/rejectcode"
)

var all = []*analysis.Analyzer{
	detlint.Analyzer,
	advicesize.Analyzer,
	errladder.Analyzer,
	rejectcode.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("karousos-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *checks != "" {
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					selected = append(selected, a)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(stderr, "karousos-vet: unknown analyzer %q (have: %s)\n", name, names(all))
				return 2
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "karousos-vet: %v\n", err)
		return 2
	}

	exit := 0
	for _, p := range pkgs {
		var ds []analysis.Diagnostic
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer: a, Fset: p.Fset, Files: p.Syntax,
				Pkg: p.Types, TypesInfo: p.TypesInfo,
				Report: func(d analysis.Diagnostic) { ds = append(ds, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "karousos-vet: %s over %s: %v\n", a.Name, p.PkgPath, err)
				return 2
			}
		}
		// Directive hygiene runs regardless of -checks: a typoed directive
		// must never silently suppress nothing.
		dirPass := &analysis.Pass{Fset: p.Fset, Files: p.Syntax, Pkg: p.Types, TypesInfo: p.TypesInfo}
		ds = append(ds, analysis.CheckDirectives(dirPass)...)

		analysis.SortDiagnostics(p.Fset, ds)
		for _, d := range ds {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 1
		}
	}
	return exit
}

func names(as []*analysis.Analyzer) string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return strings.Join(out, ", ")
}
