package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runVet drives run() and returns (exit, stdout, stderr).
func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestListShowsAllAnalyzers pins the analyzer census the driver exposes:
// all seven, with conclint's two check names spelled out.
func TestListShowsAllAnalyzers(t *testing.T) {
	code, out, errb := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	if len(lines) != 7 {
		t.Fatalf("got %d analyzers listed, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "conclint (leaklint, locklint)") {
		t.Errorf("-list should spell out conclint's check names:\n%s", out)
	}
}

// TestUnknownCheckIsDriverError pins exit 2 and the known-checks hint.
func TestUnknownCheckIsDriverError(t *testing.T) {
	code, _, errb := runVet(t, "-checks", "nosuchcheck", "karousos.dev/karousos/internal/core")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "known checks") {
		t.Errorf("error should list the known checks, got %q", errb)
	}
}

// TestCheckNameSelectsOwningAnalyzer: -checks locklint must resolve to
// conclint and vet cleanly over an in-scope, clean package.
func TestCheckNameSelectsOwningAnalyzer(t *testing.T) {
	code, out, errb := runVet(t, "-checks", "locklint", "karousos.dev/karousos/internal/fleet")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

// TestJSONSuppressedFindingsVisible pins the -json contract over the real
// tree: epochlog's reviewed hold-across-fsync suppressions appear with
// suppressed=true, and because every finding is suppressed the exit is 0.
func TestJSONSuppressedFindingsVisible(t *testing.T) {
	code, out, errb := runVet(t, "-json", "karousos.dev/karousos/internal/epochlog")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	var ds []jsonDiag
	if err := json.Unmarshal([]byte(out), &ds); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	locklint := 0
	for _, d := range ds {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding on an exit-0 run: %+v", d)
		}
		if d.Check == "locklint" {
			locklint++
			if d.Analyzer != "conclint" {
				t.Errorf("locklint finding should belong to conclint, got %q", d.Analyzer)
			}
			if d.Pos == "" || !strings.Contains(d.Message, "holding") {
				t.Errorf("locklint diagnostic incomplete: %+v", d)
			}
		}
	}
	if locklint == 0 {
		t.Error("epochlog's reviewed locklint suppressions should be visible under -json")
	}
}

// TestBrokenPackageDegradesToLoadDiagnostic: a type-error package costs
// one [load] line and exit 1, while the healthy package still vets.
func TestBrokenPackageDegradesToLoadDiagnostic(t *testing.T) {
	code, out, errb := runVet(t,
		"./internal/analysis/load/testdata/src/typeerr",
		"karousos.dev/karousos/internal/core")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "[load]") || !strings.Contains(out, "typeerr") {
		t.Errorf("broken package should surface as a [load] diagnostic naming it, got:\n%s", out)
	}
}
