package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/shard"
)

// TestPipelineShardedWorkflow: the one-process sharded loop exits 0, the
// topology root it leaves behind is a readable shard topology, and the
// same root then audits clean again through the auditd CLI's sharded
// flags.
func TestPipelineShardedWorkflow(t *testing.T) {
	root := filepath.Join(t.TempDir(), "shards")
	var out, errb bytes.Buffer
	code := run([]string{"pipeline", "-app", "wiki", "-shards", "4", "-n", "60",
		"-epoch-requests", "5", "-root", root, "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("pipeline exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PIPELINE ACCEPTED: served 60 requests") {
		t.Fatalf("pipeline output: %s", out.String())
	}

	m, err := shard.ReadMap(root)
	if err != nil {
		t.Fatalf("pipeline left no readable shard map: %v", err)
	}
	if m.Shards != 4 {
		t.Fatalf("map shards = %d, want 4", m.Shards)
	}
	for s := 0; s < m.Shards; s++ {
		if _, err := shard.ReadMap(root); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelineSingleShard: a 1-shard topology is the degenerate case and
// must still accept — the sharded plane collapses to the classic one.
func TestPipelineSingleShard(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"pipeline", "-app", "wiki", "-shards", "1", "-n", "20",
		"-epoch-requests", "10", "-root", filepath.Join(t.TempDir(), "one")}, &out, &errb)
	if code != 0 {
		t.Fatalf("single-shard pipeline exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PIPELINE ACCEPTED") {
		t.Fatalf("output: %s", out.String())
	}
}

// TestChaosPartitionCLI: the built-in partition scenario exits 0 with the
// invariants-held banner; an unknown scenario name is an infrastructure
// error.
func TestChaosPartitionCLI(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"chaos", "-scenario", "partition", "-shards", "2", "-seed", "11",
		"-dir", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("chaos exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PARTITION CHAOS OK") {
		t.Fatalf("chaos output: %s", out.String())
	}
	if code := run([]string{"chaos", "-scenario", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exit %d", code)
	}
}

// TestBadArgs: unknown subcommands, apps, and serve without a mode are
// infrastructure errors.
func TestBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code != 1 {
		t.Fatalf("unknown subcommand exit %d", code)
	}
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no args exit %d", code)
	}
	if code := run([]string{"pipeline", "-app", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown app exit %d", code)
	}
	if code := run([]string{"serve"}, &out, &errb); code != 1 {
		t.Fatalf("serve without -local or -backends exit %d", code)
	}
	if code := run([]string{"serve", "-backends", "http://x", "-root", t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("serve with no shard map exit %d", code)
	}
}
