// karousos-gateway is the sharded topology's HTTP front door:
//
//	karousos-gateway serve -local -app wiki -shards 4 -root shards -addr :8081
//	    boots one collector per shard in-process (each with its own epoch
//	    log under root/shard-NN), writes the shard map, and serves the
//	    gateway that routes /invoke requests to their home shard;
//
//	karousos-gateway serve -root shards -backends http://h0:8080,http://h1:8080
//	    fronts externally running collectors (one karousos-auditd serve
//	    per shard) with the map read from root/shardmap.json;
//
//	karousos-gateway pipeline -app wiki -shards 4 -n 200 -epoch-requests 25
//	    runs the whole sharded loop in one process — gateway over loopback
//	    HTTP, N requests fanned to their shards, seal, shard-parallel
//	    audit with the cross-shard merge — and exits by the combined
//	    verdict.
//
// The gateway is deliberately dumb: routing is a pure function of the
// shard map and the request input, so any auditor can re-derive every
// routing decision from the map file and the per-shard traces alone.
// Exit codes are scriptable: 0 accepted, 2 rejected (the merged code and
// reason are printed), 1 infrastructure error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/chaos"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/netfault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment explicit so tests drive the CLI
// in-process and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	switch args[0] {
	case "serve":
		return serveCmd(args[1:], stdout, stderr)
	case "pipeline":
		return pipelineCmd(args[1:], stdout, stderr)
	case "chaos":
		return chaosCmd(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: karousos-gateway serve|pipeline|chaos [flags]

  serve     front a shard topology: -local boots collectors in-process,
            -backends fronts external ones (map read from -root)
  pipeline  gateway + shards + shard-parallel audit in one process; the
            exit code is the combined verdict
  chaos     run a partition scenario (blackhole + kill, flapping link, or
            gateway restart) against a local topology; exits 0 if every
            partition-tolerance invariant held`)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "karousos-gateway:", err)
	return 1
}

// mapFor builds the topology for -local mode. The default key fields are
// the wiki application's ("id" on create/render, "page" on comment) —
// the one bundled app whose store keys are page-local and therefore
// shardable.
func mapFor(shards int, keyFields string) shard.Map {
	m := shard.Map{Shards: shards}
	for _, f := range strings.Split(keyFields, ",") {
		if f = strings.TrimSpace(f); f != "" {
			m.KeyFields = append(m.KeyFields, f)
		}
	}
	return m
}

func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8081", "gateway listen address")
	root := fs.String("root", "karousos-shards", "topology root (shardmap.json plus, in -local mode, the shard-NN epoch logs)")
	backends := fs.String("backends", "", "comma-separated shard backend URLs, indexed by shard (external mode)")
	local := fs.Bool("local", false, "boot one collector per shard in-process instead of fronting external backends")
	app := fs.String("app", "wiki", "application served by every shard (-local mode)")
	shards := fs.Int("shards", 4, "shard count (-local mode)")
	keyFields := fs.String("key-fields", "id,page", "input fields tried in order for the locality key (-local mode)")
	epochReqs := fs.Int("epoch-requests", 50, "per-shard seal threshold (-local mode)")
	maxAge := fs.Duration("epoch-max-age", 0, "seal non-empty epochs older than this (0 = disabled, -local mode)")
	seed := fs.Int64("seed", 42, "scheduler seed; shard s serves with seed+s (-local mode)")
	commit := fs.String("commit", "group", "trace commit mode per shard: group, per-request, async (-local mode)")
	maxInflight := fs.Int("max-inflight", 0, "per-shard admission window (0 = default, -local mode)")
	drain := fs.Duration("drain", 15*time.Second, "grace period for in-flight requests on shutdown")
	perTry := fs.Duration("per-try-timeout", 0, "per-attempt budget on proxied requests (0 = default 2s)")
	maxRetries := fs.Int("max-retries", 0, "extra attempts for provably-unsent requests (0 = default 2, -1 = none)")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive transport failures that open a shard's circuit (0 = default 5)")
	breakerOpenFor := fs.Duration("breaker-open-for", 0, "open-circuit window before a half-open probe (0 = default 1s)")
	hedgeAfter := fs.Duration("hedge-after", 0, "race a second idempotent health probe after this long (0 = no hedging)")
	netfaultSpec := fs.String("netfault", "", "arm a network fault on the proxy path, \"op[:seed[:times]]\" (testing)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	tuning := gateway.Tuning{
		PerTryTimeout:   *perTry,
		MaxRetries:      *maxRetries,
		BreakerFailures: *breakerFailures,
		BreakerOpenFor:  *breakerOpenFor,
		HedgeAfter:      *hedgeAfter,
	}
	var transport http.RoundTripper
	if *netfaultSpec != "" {
		inj := netfault.NewInjector()
		if err := inj.ArmSpec(*netfaultSpec, ""); err != nil {
			return fail(stderr, err)
		}
		transport = inj.Transport(nil)
	}

	var handler http.Handler
	closer := func() error { return nil }
	switch {
	case *local:
		spec, err := harness.SpecByName(*app)
		if err != nil {
			return fail(stderr, err)
		}
		top, err := gateway.NewLocal(gateway.LocalConfig{
			Spec:          spec,
			Root:          *root,
			Map:           mapFor(*shards, *keyFields),
			EpochRequests: *epochReqs,
			EpochMaxAge:   *maxAge,
			Seed:          *seed,
			Commit:        collectorhttp.CommitMode(*commit),
			Limits:        verifier.DefaultLimits(),
			MaxInflight:   *maxInflight,
			Transport:     transport,
			Tuning:        tuning,
		})
		if err != nil {
			return fail(stderr, err)
		}
		handler = top.Handler()
		// Close seals every shard's open epoch — a SIGTERM must not strand
		// recorded requests in unsealed (unauditable-by-absence) epochs.
		closer = top.Close
		fmt.Fprintf(stdout, "local topology: %d shards of %s under %s\n", *shards, *app, *root)
	case *backends != "":
		m, err := shard.ReadMap(*root)
		if err != nil {
			return fail(stderr, fmt.Errorf("reading shard map: %w", err))
		}
		gw, err := gateway.New(gateway.Config{Map: m, Backends: strings.Split(*backends, ","), Transport: transport, Tuning: tuning})
		if err != nil {
			return fail(stderr, err)
		}
		handler = gw.Handler()
		fmt.Fprintf(stdout, "fronting %d external shard backends, map from %s\n", m.Shards, *root)
	default:
		return fail(stderr, errors.New("serve needs -local or -backends"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closer() //karousos:errladder-ok the listen failure is the error that surfaces
		return fail(stderr, err)
	}
	// Header/read/idle timeouts keep a stalled client from pinning a
	// connection forever; no WriteTimeout because shard responses are
	// bounded by the collectors' own limits.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			hs.Close()
		}
	}()
	fmt.Fprintf(stdout, "gateway listening on %s\n", ln.Addr())
	err = hs.Serve(ln)
	if closeErr := closer(); closeErr != nil {
		return fail(stderr, closeErr)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(stderr, err)
	}
	return 0
}

func pipelineCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application served by every shard")
	shards := fs.Int("shards", 4, "shard count")
	keyFields := fs.String("key-fields", "id,page", "input fields tried in order for the locality key")
	n := fs.Int("n", 200, "number of requests to drive through the gateway")
	epochReqs := fs.Int("epoch-requests", 25, "per-shard seal threshold")
	root := fs.String("root", "", "topology root (default: a fresh temp dir)")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	lanes := fs.Int("lanes", 0, "concurrent audit lanes (0 = one per shard)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall pipeline budget")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	if *root == "" {
		tmp, err := os.MkdirTemp("", "karousos-shards-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*root = tmp
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec:          spec,
		Root:          *root,
		Map:           mapFor(*shards, *keyFields),
		EpochRequests: *epochReqs,
		Seed:          *seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		return fail(stderr, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		top.Close() //karousos:errladder-ok the listen failure is the error that surfaces
		return fail(stderr, err)
	}
	hs := &http.Server{Handler: top.Gateway.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln) //karousos:errladder-ok Serve returns ErrServerClosed on the Close below; request failures surface per request

	served, refused := 0, 0
	base := "http://" + ln.Addr().String()
	for _, r := range workloadFor(*app, *n, *seed) {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			hs.Close()
			top.Close() //karousos:errladder-ok the marshal failure is the error that surfaces
			return fail(stderr, err)
		}
		resp, err := http.Post(base+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			refused++
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			served++
		} else {
			refused++
		}
	}
	hs.Close()
	if err := top.Close(); err != nil {
		return fail(stderr, err)
	}

	sh, err := auditd.NewSharded(auditd.ShardedConfig{
		Root:   *root,
		Lanes:  *lanes,
		Limits: verifier.DefaultLimits(),
	})
	if err != nil {
		return fail(stderr, err)
	}
	res, err := sh.Audit(ctx)
	if err != nil {
		return fail(stderr, err)
	}
	for _, rep := range res.Shards {
		verdict := "accepted"
		if rep.Code != "" {
			verdict = fmt.Sprintf("[%s] %s", rep.Code, rep.Reason)
		}
		fmt.Fprintf(stdout, "shard %d: %d epochs audited, %s\n", rep.Shard, rep.Status.LastProcessed, verdict)
	}
	if !res.Accepted() {
		fmt.Fprintf(stderr, "PIPELINE REJECTED [%s]: %s\n", res.Merge.Code, res.Merge.Reason)
		for _, c := range res.Merge.Conflicts {
			fmt.Fprintf(stderr, "  conflict: key %q claimed by shards %v\n", c.Key, c.Shards)
		}
		return 2
	}
	routed := top.Gateway.Counters()
	busy := 0
	for _, c := range routed {
		if c.Routed > 0 {
			busy++
		}
	}
	fmt.Fprintf(stdout, "PIPELINE ACCEPTED: served %d requests (%d refused) across %d of %d shards, %d handlers re-run\n",
		served, refused, busy, *shards, res.Stats.HandlersRerun)
	return 0
}

// chaosCmd runs one of the built-in partition scenarios (or a JSON
// scripted one) and exits by its invariants: 0 held, 2 violated, 1
// runner breakage.
func chaosCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("scenario", "partition", "built-in scenario: partition (blackhole + kill-while-dark), flap, gateway-restart")
	file := fs.String("scenario-file", "", "JSON PartitionScenario file (overrides -scenario)")
	shards := fs.Int("shards", 4, "topology width")
	seed := fs.Int64("seed", 11, "fault-schedule and workload seed")
	dir := fs.String("dir", "", "scenario scratch directory (default: a fresh temp dir)")
	verbose := fs.Bool("v", false, "print the full result as JSON")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	var sc chaos.PartitionScenario
	switch {
	case *file != "":
		blob, err := os.ReadFile(*file)
		if err != nil {
			return fail(stderr, err)
		}
		if err := json.Unmarshal(blob, &sc); err != nil {
			return fail(stderr, fmt.Errorf("scenario %s: %w", *file, err))
		}
	case *name == "partition":
		sc = chaos.PartitionAcceptanceScenario(*shards, *seed)
	case *name == "flap":
		sc = chaos.FlappingScenario(*shards, *seed)
	case *name == "gateway-restart":
		sc = chaos.GatewayRestartScenario(*shards, *seed)
	default:
		return fail(stderr, fmt.Errorf("unknown scenario %q (have partition, flap, gateway-restart)", *name))
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "karousos-partition-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	res, err := chaos.RunPartition(*dir, sc)
	if err != nil {
		return fail(stderr, err)
	}
	if *verbose {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return fail(stderr, err)
		}
	}
	merge := "accepted"
	if res.Merge.Code != "" {
		merge = fmt.Sprintf("[%s] %s", res.Merge.Code, res.Merge.Reason)
	}
	fmt.Fprintf(stdout, "PARTITION CHAOS %s shards=%d seed=%d fault=%q: served=%d degraded=%d shed=%d retries=%d fastFails=%d accepted=%d unauditable=%d rejected=%d merge=%s\n",
		sc.App, sc.Shards, sc.Seed, sc.Fault, res.Served, res.Degraded, res.Shed,
		res.Victim.Retries, res.Victim.FastFails, res.Accepted, res.Unauditable, res.Rejected, merge)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(stderr, "PARTITION CHAOS INVARIANT VIOLATED:", v)
		}
		return 2
	}
	fmt.Fprintln(stdout, "PARTITION CHAOS OK: all invariants held")
	return 0
}

func workloadFor(name string, n int, seed int64) []server.Request {
	switch name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	default:
		return workload.Wiki(n, seed)
	}
}
