package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/workload"
)

// TestPipelineAuditStatusWorkflow exercises the daemon's scriptable
// surface: a pipeline run exits 0, the epoch directory then audits clean
// again offline (the checkpoint advancing), and status reports the log.
func TestPipelineAuditStatusWorkflow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "epochs")
	var out, errb bytes.Buffer
	code := run([]string{"pipeline", "-app", "motd", "-n", "40", "-epoch-requests", "15", "-dir", dir, "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("pipeline exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PIPELINE ACCEPTED") || !strings.Contains(out.String(), "sealed 3 epochs") {
		t.Fatalf("pipeline output: %s", out.String())
	}

	cp := filepath.Join(t.TempDir(), "cp.json")
	out.Reset()
	errb.Reset()
	code = run([]string{"audit", "-dir", dir, "-checkpoint", cp}, &out, &errb)
	if code != 0 {
		t.Fatalf("audit exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "AUDIT ACCEPTED through epoch 3") {
		t.Fatalf("audit output: %s", out.String())
	}

	// Re-auditing against the checkpoint finds nothing pending but still
	// accepts.
	out.Reset()
	code = run([]string{"audit", "-dir", dir, "-checkpoint", cp}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "0 epochs this run") {
		t.Fatalf("re-audit exit %d: %s", code, out.String())
	}

	out.Reset()
	code = run([]string{"status", "-dir", dir, "-checkpoint", cp}, &out, &errb)
	if code != 0 {
		t.Fatalf("status exit %d: %s", code, errb.String())
	}
	var st struct {
		App          string `json:"app"`
		SealedEpochs int    `json:"sealedEpochs"`
		LastAccepted uint64 `json:"lastAccepted"`
		Pending      int    `json:"pending"`
	}
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatalf("status output not JSON: %v (%s)", err, out.String())
	}
	if st.App != "motd" || st.SealedEpochs != 3 || st.LastAccepted != 3 || st.Pending != 0 {
		t.Fatalf("status = %+v", st)
	}
}

// TestAuditRejectsCorruptEpoch: corrupting a sealed advice file makes the
// audit subcommand exit 2 with the bare reason code on stdout.
func TestAuditRejectsCorruptEpoch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "epochs")
	var out, errb bytes.Buffer
	if code := run([]string{"pipeline", "-app", "motd", "-n", "30", "-epoch-requests", "10", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("pipeline exit %d: %s", code, errb.String())
	}
	path := filepath.Join(dir, "ep000002.advice")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		blob[i] ^= 0x5a
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	code := run([]string{"audit", "-dir", dir, "-reason-code"}, &out, &errb)
	if code != 2 {
		t.Fatalf("audit of corrupt epoch exit %d: %s / %s", code, out.String(), errb.String())
	}
	if strings.TrimSpace(out.String()) != "MalformedAdvice" {
		t.Fatalf("reason code output %q, want MalformedAdvice", out.String())
	}
	if !strings.Contains(errb.String(), "epoch 2") {
		t.Fatalf("rejection did not name the epoch: %s", errb.String())
	}
}

// TestChaosCmd: the built-in acceptance scenario passes (exit 0) and its
// verdict summary is printed; a scripted scenario file is accepted too.
func TestChaosCmd(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"chaos", "-app", "motd", "-seed", "11", "-dir", filepath.Join(t.TempDir(), "chaos")}, &out, &errb)
	if code != 0 {
		t.Fatalf("chaos exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "CHAOS OK") || !strings.Contains(out.String(), "unauditable=1") {
		t.Fatalf("chaos output: %s", out.String())
	}

	// A scripted scenario from a JSON file: honest run, no faults.
	sc := filepath.Join(t.TempDir(), "sc.json")
	blob := `{"app":"motd","seed":3,"requests":20,"epochRequests":10}`
	if err := os.WriteFile(sc, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"chaos", "-scenario", sc, "-v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("scripted chaos exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), `"rejected": 0`) || !strings.Contains(out.String(), "unauditable=0") {
		t.Fatalf("scripted chaos output: %s", out.String())
	}
}

// TestShardedAuditCmd: a topology driven through the gateway audits
// clean via -shards, the checkpoint directory makes a re-audit a no-op
// that still accepts, and a wrong -shards pin is an error.
func TestShardedAuditCmd(t *testing.T) {
	root := filepath.Join(t.TempDir(), "shards")
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root,
		Map:           shard.Map{Shards: 2, KeyFields: []string{"id", "page"}},
		EpochRequests: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(top.Gateway.Handler())
	defer ts.Close()
	for _, r := range workload.Wiki(30, 9) {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("invoke: status %d", resp.StatusCode)
		}
	}
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	cpDir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"audit", "-shards", "2", "-dir", root, "-checkpoint", cpDir}, &out, &errb)
	if code != 0 {
		t.Fatalf("sharded audit exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "SHARDED AUDIT ACCEPTED: 2 shards") {
		t.Fatalf("sharded audit output: %s", out.String())
	}

	// Per-shard checkpoints advanced: the re-audit grades nothing new but
	// still accepts the topology.
	out.Reset()
	if code := run([]string{"audit", "-shards", "2", "-dir", root, "-checkpoint", cpDir, "-lanes", "1"}, &out, &errb); code != 0 {
		t.Fatalf("sharded re-audit exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "SHARDED AUDIT ACCEPTED") {
		t.Fatalf("sharded re-audit output: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"audit", "-shards", "3", "-dir", root}, &out, &errb); code != 1 {
		t.Fatalf("wrong -shards pin exit %d: %s", code, errb.String())
	}
}

// TestShardChaosCmd: the sharded acceptance scenario passes end to end
// through the CLI.
func TestShardChaosCmd(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"chaos", "-shards", "2", "-seed", "17", "-dir", filepath.Join(t.TempDir(), "sc")}, &out, &errb)
	if code != 0 {
		t.Fatalf("shard chaos exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "SHARD CHAOS OK") || !strings.Contains(out.String(), "rejected=0") {
		t.Fatalf("shard chaos output: %s", out.String())
	}
}

// TestBadArgs: unknown subcommands and apps are infrastructure errors.
func TestBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code != 1 {
		t.Fatalf("unknown subcommand exit %d", code)
	}
	if code := run([]string{"pipeline", "-app", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown app exit %d", code)
	}
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no args exit %d", code)
	}
}
