// karousos-auditd is the continuous-audit pipeline's command-line front:
//
//	karousos-auditd serve -app wiki -dir epochs -addr :8080 -epoch-requests 50
//	    serves the application as an HTTP endpoint, recording the trusted
//	    trace into a durable epoch log and sealing epochs as thresholds
//	    are crossed;
//
//	karousos-auditd audit -dir epochs [-checkpoint cp.json] [-follow]
//	    audits every sealed epoch past the checkpoint in order, carrying
//	    dictionary state across epochs; -follow keeps tailing the log;
//
//	karousos-auditd status -dir epochs [-checkpoint cp.json]
//	    prints the log's sealed manifests and the auditor's cursor;
//
//	karousos-auditd pipeline -app wiki -n 200 -epoch-requests 50 -dir epochs
//	    runs the whole loop in one process — serve over loopback HTTP,
//	    seal mid-workload, audit concurrently — and exits by verdict.
//
// Exit codes are scriptable like karousos-audit's: 0 every audited epoch
// accepted, 2 an epoch rejected (the epoch and reason code are printed),
// 1 infrastructure error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment explicit so tests drive the CLI
// in-process and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	switch args[0] {
	case "serve":
		return serveCmd(args[1:], stdout, stderr)
	case "audit":
		return auditCmd(args[1:], stdout, stderr)
	case "status":
		return statusCmd(args[1:], stdout, stderr)
	case "pipeline":
		return pipelineCmd(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: karousos-auditd serve|audit|status|pipeline [flags]

  serve     serve an app over HTTP, recording a durable epoch log
  audit     audit sealed epochs in order; exits 0 ACCEPT, 2 REJECT, 1 error
  status    print the epoch log's manifests and the audit cursor
  pipeline  serve + seal + audit in one process (exit code is the verdict)`)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "karousos-auditd:", err)
	return 1
}

func workloadFor(name string, n int, seed int64) []server.Request {
	switch name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	default:
		return workload.Wiki(n, seed)
	}
}

func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki")
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	epochReqs := fs.Int("epoch-requests", 50, "seal after this many requests (0 = manual/seal endpoint only)")
	maxAge := fs.Duration("epoch-max-age", 0, "seal non-empty epochs older than this (0 = disabled)")
	seed := fs.Int64("seed", 42, "scheduler seed")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          spec,
		Dir:           *dir,
		EpochRequests: *epochReqs,
		EpochMaxAge:   *maxAge,
		Seed:          *seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		return fail(stderr, err)
	}
	hs := &http.Server{Addr: *addr, Handler: col.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		hs.Close()
	}()
	fmt.Fprintf(stdout, "serving %s on %s, epoch log %s (seal every %d requests)\n",
		*app, *addr, *dir, *epochReqs)
	err = hs.ListenAndServe()
	if closeErr := col.Close(); closeErr != nil {
		return fail(stderr, closeErr)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "sealed %d epochs, served %d requests\n",
		col.Status().SealedEpochs, col.Status().Served)
	return 0
}

func auditCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	cp := fs.String("checkpoint", "", "resume file; written after every accepted epoch")
	follow := fs.Bool("follow", false, "keep tailing the log until interrupted")
	deadline := fs.Duration("deadline", verifier.DefaultLimits().Deadline, "wall-clock budget per epoch audit (0 = unbounded)")
	reasonCode := fs.Bool("reason-code", false, "on rejection, print only the bare reason code on stdout")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	lim := verifier.DefaultLimits()
	lim.Deadline = *deadline
	aud, err := auditd.New(auditd.Config{Dir: *dir, Checkpoint: *cp, Limits: lim})
	if err != nil {
		return fail(stderr, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *follow {
		err = aud.Run(ctx)
	} else {
		_, err = aud.RunOnce(ctx)
	}
	st := aud.Status()
	if err != nil {
		var rej *auditd.Reject
		if errors.As(err, &rej) {
			if *reasonCode {
				fmt.Fprintln(stdout, rej.Code)
			}
			fmt.Fprintf(stderr, "AUDIT REJECTED epoch %d [%s]: %s\n", rej.Epoch, rej.Code, rej.Reason)
			return 2
		}
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "AUDIT ACCEPTED through epoch %d: %d epochs this run, %v total audit time\n",
		st.LastAccepted, st.Accepted, st.TotalAudit)
	return 0
}

func statusCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	cp := fs.String("checkpoint", "", "auditor resume file to report against")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	sealed, err := epochlog.ListSealed(*dir)
	if err != nil {
		return fail(stderr, err)
	}
	out := map[string]any{"dir": *dir, "sealedEpochs": len(sealed), "manifests": sealed}
	if meta, err := collectorhttp.ReadMeta(*dir); err == nil {
		out["app"], out["mode"] = meta.App, meta.Mode
	}
	if *cp != "" {
		if blob, err := os.ReadFile(*cp); err == nil {
			var c struct {
				LastAccepted uint64 `json:"lastAccepted"`
			}
			if json.Unmarshal(blob, &c) == nil {
				out["lastAccepted"] = c.LastAccepted
				out["pending"] = len(sealed) - int(c.LastAccepted)
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func pipelineCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki")
	n := fs.Int("n", 200, "number of requests to drive")
	epochReqs := fs.Int("epoch-requests", 50, "seal after this many requests")
	dir := fs.String("dir", "", "epoch log directory (default: a fresh temp dir)")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall pipeline budget")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "karousos-epochs-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := auditd.RunPipeline(ctx, spec, workloadFor(*app, *n, *seed), auditd.PipelineOptions{
		Dir:           *dir,
		EpochRequests: *epochReqs,
		Seed:          *seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		var rej *auditd.Reject
		if errors.As(err, &rej) {
			fmt.Fprintf(stderr, "PIPELINE REJECTED epoch %d [%s]: %s\n", rej.Epoch, rej.Code, rej.Reason)
			return 2
		}
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "PIPELINE ACCEPTED: served %d requests over %s, sealed %d epochs, all audited in %v\n",
		res.Served, res.Addr, res.Sealed, res.Status.TotalAudit)
	return 0
}
