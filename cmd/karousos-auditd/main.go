// karousos-auditd is the continuous-audit pipeline's command-line front:
//
//	karousos-auditd serve -app wiki -dir epochs -addr :8080 -epoch-requests 50
//	    serves the application as an HTTP endpoint, recording the trusted
//	    trace into a durable epoch log and sealing epochs as thresholds
//	    are crossed;
//
//	karousos-auditd audit -dir epochs [-checkpoint cp.json] [-follow]
//	    audits every sealed epoch past the checkpoint in order, carrying
//	    dictionary state across epochs; -follow keeps tailing the log;
//
//	karousos-auditd audit -shards 4 -dir shards [-lanes 2]
//	    audits a sharded topology (as written by karousos-gateway): one
//	    audit lane per shard-NN epoch log under the root, run
//	    concurrently up to -lanes, joined by the cross-shard merge check
//	    into one combined verdict; -shard-dirs overrides the directory
//	    layout;
//
//	karousos-auditd status -dir epochs [-checkpoint cp.json]
//	    prints the log's sealed manifests and the auditor's cursor;
//
//	karousos-auditd pipeline -app wiki -n 200 -epoch-requests 50 -dir epochs
//	    runs the whole loop in one process — serve over loopback HTTP,
//	    seal mid-workload, audit concurrently — and exits by verdict;
//
//	karousos-auditd chaos -app motd -seed 11
//	    runs the fault-injection acceptance scenario (collector crash,
//	    transient EIO on auditor reads, one-epoch advice outage) and
//	    exits 0 only if every robustness invariant held; -shards N runs
//	    the sharded acceptance scenario instead (one shard killed and
//	    restarted mid-workload behind a gateway).
//
// Exit codes are scriptable like karousos-audit's: 0 every audited epoch
// accepted (chaos: every invariant held), 2 an epoch rejected or an
// invariant violated (the epoch and reason code are printed),
// 1 infrastructure error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/chaos"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment explicit so tests drive the CLI
// in-process and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	switch args[0] {
	case "serve":
		return serveCmd(args[1:], stdout, stderr)
	case "audit":
		return auditCmd(args[1:], stdout, stderr)
	case "status":
		return statusCmd(args[1:], stdout, stderr)
	case "pipeline":
		return pipelineCmd(args[1:], stdout, stderr)
	case "chaos":
		return chaosCmd(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: karousos-auditd serve|audit|status|pipeline|chaos [flags]

  serve     serve an app over HTTP, recording a durable epoch log
  audit     audit sealed epochs in order; exits 0 ACCEPT, 2 REJECT, 1 error
            (-shards N audits a sharded topology root shard-parallel)
  status    print the epoch log's manifests and the audit cursor
  pipeline  serve + seal + audit in one process (exit code is the verdict)
  chaos     run the fault-injection acceptance scenario; exits 0 if every
            robustness invariant held`)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "karousos-auditd:", err)
	return 1
}

func workloadFor(name string, n int, seed int64) []server.Request {
	switch name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	case "feeds":
		return workload.Feeds(n, workload.Mixed, seed)
	default:
		return workload.Wiki(n, seed)
	}
}

func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki, feeds")
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	epochReqs := fs.Int("epoch-requests", 50, "seal after this many requests (0 = manual/seal endpoint only)")
	maxAge := fs.Duration("epoch-max-age", 0, "seal non-empty epochs older than this (0 = disabled)")
	seed := fs.Int64("seed", 42, "scheduler seed")
	drain := fs.Duration("drain", 15*time.Second, "grace period for in-flight requests on shutdown")
	commit := fs.String("commit", "group", "trace commit mode: group (one fsync per batch), per-request (one fsync per append), async")
	maxInflight := fs.Int("max-inflight", 0, "admission window: max requests between admit and durable commit (0 = default 256)")
	maxQueuedBytes := fs.Int64("max-queued-bytes", 0, "admission ceiling on queued request bytes (0 = default 32 MiB)")
	retryAfter := fs.Duration("retry-after", 0, "base Retry-After hint on 429 responses (0 = default 1s)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline through serve and commit (0 = none)")
	maxAuditLag := fs.Int("max-audit-lag", 0, "tighten admission and fail /readyz when the auditor falls this many epochs behind (0 = default when a checkpoint is followed)")
	auditCkpt := fs.String("audit-checkpoint", "", "auditor checkpoint file to follow for lag-based backpressure (\"\" = none)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	var progress func() (uint64, bool)
	var memoStats func() (collectorhttp.AuditMemoState, bool)
	if *auditCkpt != "" {
		// The auditor is a separate process; its durable checkpoint is the
		// one signal both sides already agree on, so lag-based backpressure
		// and memo telemetry read it instead of inventing an RPC.
		progress = func() (uint64, bool) { return auditd.ReadCheckpointProgress(nil, *auditCkpt) }
		memoStats = func() (collectorhttp.AuditMemoState, bool) {
			mc, ok := auditd.ReadCheckpointMemo(nil, *auditCkpt)
			return collectorhttp.AuditMemoState{Hits: mc.Hits, Misses: mc.Misses, Evictions: mc.Evictions}, ok
		}
	}
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:           spec,
		Dir:            *dir,
		EpochRequests:  *epochReqs,
		EpochMaxAge:    *maxAge,
		Seed:           *seed,
		Limits:         verifier.DefaultLimits(),
		Commit:         collectorhttp.CommitMode(*commit),
		MaxInflight:    *maxInflight,
		MaxQueuedBytes: *maxQueuedBytes,
		RetryAfter:     *retryAfter,
		RequestTimeout: *reqTimeout,
		MaxAuditLag:    *maxAuditLag,
		AuditProgress:  progress,
		AuditMemo:      memoStats,
	})
	if err != nil {
		return fail(stderr, err)
	}
	// Header/read/idle timeouts keep a stalled or malicious client from
	// pinning a connection (and its goroutine) forever; no WriteTimeout
	// because audited handlers are already bounded by the verifier limits.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           col.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Drain in-flight requests so their trace events land in the log,
		// then force-close whatever is still hanging past the grace period.
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			hs.Close()
		}
	}()
	fmt.Fprintf(stdout, "serving %s on %s, epoch log %s (seal every %d requests)\n",
		*app, *addr, *dir, *epochReqs)
	err = hs.ListenAndServe()
	// Close seals the open epoch — a SIGTERM must not strand recorded
	// requests in an unsealed (hence unauditable-by-absence) epoch.
	if closeErr := col.Close(); closeErr != nil {
		return fail(stderr, closeErr)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "sealed %d epochs, served %d requests\n",
		col.Status().SealedEpochs, col.Status().Served)
	return 0
}

func auditCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	cp := fs.String("checkpoint", "", "resume file; written after every accepted epoch (sharded mode: a directory holding one resume file per shard)")
	follow := fs.Bool("follow", false, "keep tailing the log until interrupted")
	deadline := fs.Duration("deadline", verifier.DefaultLimits().Deadline, "wall-clock budget per epoch audit (0 = unbounded)")
	reasonCode := fs.Bool("reason-code", false, "on rejection, print only the bare reason code on stdout")
	workers := fs.Int("workers", 0, "audit parallelism per epoch: 0 = GOMAXPROCS, 1 = sequential (verdict identical at every setting)")
	shards := fs.Int("shards", 0, "audit a sharded topology: -dir is its root and this must match its shard map (0 = single log)")
	shardDirs := fs.String("shard-dirs", "", "comma-separated per-shard epoch-log directories, indexed by shard (default: shard-NN under -dir)")
	lanes := fs.Int("lanes", 0, "concurrent audit lanes in sharded mode (0 = one per shard; the verdict is identical at every setting)")
	memoOn := fs.Bool("memo", false, "memoize re-execution across epochs (content-addressed tag-group cache; verdict identical on or off)")
	memoMax := fs.Int("memo-max-bytes", 256<<20, "memo cache byte budget when -memo is set (sharded mode: per lane)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	lim := verifier.DefaultLimits()
	lim.Deadline = *deadline
	memoBytes := memoBudget(*memoOn, *memoMax)
	if *shards > 0 || *shardDirs != "" {
		return shardedAuditCmd(*dir, *shardDirs, *cp, *shards, *lanes, *workers, memoBytes, *follow, *reasonCode, lim, stdout, stderr)
	}
	aud, err := auditd.New(auditd.Config{Dir: *dir, Checkpoint: *cp, Limits: lim, AuditWorkers: *workers, MemoMaxBytes: memoBytes})
	if err != nil {
		return fail(stderr, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *follow {
		err = aud.Run(ctx)
	} else {
		_, err = aud.RunOnce(ctx)
	}
	st := aud.Status()
	if err != nil {
		var rej *auditd.Reject
		if errors.As(err, &rej) {
			if *reasonCode {
				fmt.Fprintln(stdout, rej.Code)
			}
			fmt.Fprintf(stderr, "AUDIT REJECTED epoch %d [%s]: %s\n", rej.Epoch, rej.Code, rej.Reason)
			return 2
		}
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "AUDIT ACCEPTED through epoch %d: %d epochs this run, %v total audit time", st.LastAccepted, st.Accepted, st.TotalAudit)
	if memoBytes > 0 {
		fmt.Fprintf(stdout, " (memo: %d hits, %d misses, %d evictions)",
			st.Stats.MemoHits, st.Stats.MemoMisses, st.Stats.MemoEvictions)
	}
	fmt.Fprintln(stdout)
	return 0
}

// memoBudget maps the -memo/-memo-max-bytes flag pair onto the Config
// convention, where 0 disables memoization entirely.
func memoBudget(on bool, maxBytes int) int {
	if !on {
		return 0
	}
	if maxBytes <= 0 {
		return 1 << 40 // effectively unbounded
	}
	return maxBytes
}

// shardedAuditCmd is the audit subcommand's shard-parallel path: one
// audit lane per shard log, run concurrently up to the lane budget, then
// the cross-shard merge check. The combined verdict is the exit code.
func shardedAuditCmd(root, shardDirs, cp string, shards, lanes, workers, memoBytes int, follow, reasonCode bool, lim verifier.Limits, stdout, stderr io.Writer) int {
	cfg := auditd.ShardedConfig{
		Root:          root,
		Lanes:         lanes,
		CheckpointDir: cp,
		Limits:        lim,
		AuditWorkers:  workers,
		MemoMaxBytes:  memoBytes,
	}
	if shardDirs != "" {
		cfg.Dirs = strings.Split(shardDirs, ",")
	}
	if shards > 0 {
		// -shards is a sanity pin, not configuration: the topology's own map
		// file is authoritative, and a mismatch means the operator is
		// pointing at the wrong root.
		if m, err := shard.ReadMap(root); err == nil && m.Shards != shards {
			return fail(stderr, fmt.Errorf("-shards %d, but the map under %s has %d shards", shards, root, m.Shards))
		}
	}
	sh, err := auditd.NewSharded(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var res auditd.ShardedResult
	if follow {
		if err := sh.Run(ctx); err != nil {
			return fail(stderr, err)
		}
		res = sh.Result()
	} else {
		if res, err = sh.Audit(ctx); err != nil {
			return fail(stderr, err)
		}
	}
	for _, rep := range res.Shards {
		verdict := "accepted"
		if rep.Code != "" {
			verdict = fmt.Sprintf("[%s] %s", rep.Code, rep.Reason)
		}
		fmt.Fprintf(stdout, "shard %d (%s): %d epochs audited, %s\n", rep.Shard, rep.Dir, rep.Status.LastProcessed, verdict)
	}
	if !res.Accepted() {
		if reasonCode {
			fmt.Fprintln(stdout, res.Merge.Code)
		}
		fmt.Fprintf(stderr, "SHARDED AUDIT REJECTED [%s]: %s\n", res.Merge.Code, res.Merge.Reason)
		for _, c := range res.Merge.Conflicts {
			fmt.Fprintf(stderr, "  conflict: key %q claimed by shards %v\n", c.Key, c.Shards)
		}
		return 2
	}
	fmt.Fprintf(stdout, "SHARDED AUDIT ACCEPTED: %d shards, %d handlers re-run\n",
		len(res.Shards), res.Stats.HandlersRerun)
	return 0
}

func statusCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "karousos-epochs", "epoch log directory")
	cp := fs.String("checkpoint", "", "auditor resume file to report against")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	sealed, err := epochlog.ListSealed(*dir)
	if err != nil {
		return fail(stderr, err)
	}
	out := map[string]any{"dir": *dir, "sealedEpochs": len(sealed), "manifests": sealed}
	if meta, err := collectorhttp.ReadMeta(*dir); err == nil {
		out["app"], out["mode"] = meta.App, meta.Mode
	}
	if *cp != "" {
		if blob, err := os.ReadFile(*cp); err == nil {
			var c struct {
				LastAccepted uint64 `json:"lastAccepted"`
			}
			if json.Unmarshal(blob, &c) == nil {
				out["lastAccepted"] = c.LastAccepted
				out["pending"] = len(sealed) - int(c.LastAccepted)
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func pipelineCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "wiki", "application: motd, stacks, wiki, feeds")
	n := fs.Int("n", 200, "number of requests to drive")
	epochReqs := fs.Int("epoch-requests", 50, "seal after this many requests")
	dir := fs.String("dir", "", "epoch log directory (default: a fresh temp dir)")
	seed := fs.Int64("seed", 42, "workload and scheduler seed")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall pipeline budget")
	workers := fs.Int("workers", 0, "audit parallelism per epoch: 0 = GOMAXPROCS, 1 = sequential (verdict identical at every setting)")
	memoOn := fs.Bool("memo", false, "memoize re-execution across epochs (verdict identical on or off)")
	memoMax := fs.Int("memo-max-bytes", 256<<20, "memo cache byte budget when -memo is set")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	spec, err := harness.SpecByName(*app)
	if err != nil {
		return fail(stderr, err)
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "karousos-epochs-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := auditd.RunPipeline(ctx, spec, workloadFor(*app, *n, *seed), auditd.PipelineOptions{
		Dir:           *dir,
		EpochRequests: *epochReqs,
		Seed:          *seed,
		Limits:        verifier.DefaultLimits(),
		AuditWorkers:  *workers,
		MemoMaxBytes:  memoBudget(*memoOn, *memoMax),
	})
	if err != nil {
		var rej *auditd.Reject
		if errors.As(err, &rej) {
			fmt.Fprintf(stderr, "PIPELINE REJECTED epoch %d [%s]: %s\n", rej.Epoch, rej.Code, rej.Reason)
			return 2
		}
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "PIPELINE ACCEPTED: served %d requests over %s, sealed %d epochs (%d accepted, %d unauditable), %d auditor restarts, audited in %v\n",
		res.Served, res.Addr, res.Sealed, res.Accepted, res.Unauditable, res.Restarts, res.Status.TotalAudit)
	return 0
}

func chaosCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "motd", "application: motd, stacks, wiki, feeds")
	seed := fs.Int64("seed", 11, "fault-schedule and workload seed")
	dir := fs.String("dir", "", "scenario scratch directory (default: a fresh temp dir)")
	file := fs.String("scenario", "", "JSON scenario file (default: the built-in acceptance scenario)")
	shards := fs.Int("shards", 0, "run the sharded acceptance scenario over this many shards (0 = classic single-log scenario)")
	verbose := fs.Bool("v", false, "print the full result as JSON")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *shards > 0 {
		return shardChaosCmd(*shards, *seed, *dir, *verbose, stdout, stderr)
	}
	var sc chaos.Scenario
	if *file != "" {
		// A scripted scenario replaces the built-in one wholesale — its
		// absent fields mean "none", not "inherit the acceptance faults".
		blob, err := os.ReadFile(*file)
		if err != nil {
			return fail(stderr, err)
		}
		if err := json.Unmarshal(blob, &sc); err != nil {
			return fail(stderr, fmt.Errorf("scenario %s: %w", *file, err))
		}
	} else {
		sc = chaos.AcceptanceScenario(*app, *seed)
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "karousos-chaos-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	res, err := chaos.Run(*dir, sc)
	if err != nil {
		return fail(stderr, err)
	}
	if *verbose {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return fail(stderr, err)
		}
	}
	fmt.Fprintf(stdout, "CHAOS %s seed=%d: served=%d refused=%d sealed=%d accepted=%d unauditable=%d rejected=%d auditor-restarts=%d collector-crashes=%d\n",
		sc.App, sc.Seed, res.Served, res.Refused, res.Sealed, res.Accepted, res.Unauditable, res.Rejected, res.AuditorRestarts, res.CollectorCrashes)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(stderr, "CHAOS INVARIANT VIOLATED:", v)
		}
		return 2
	}
	if res.Rejected > 0 {
		fmt.Fprintln(stderr, "CHAOS FALSE REJECT: an infrastructure-faulted honest run was rejected")
		return 2
	}
	fmt.Fprintln(stdout, "CHAOS OK: all invariants held")
	return 0
}

// shardChaosCmd runs the sharded acceptance scenario: a gateway-fronted
// wiki topology with one shard killed and restarted mid-workload, then
// the lane-count differential audit.
func shardChaosCmd(shards int, seed int64, dir string, verbose bool, stdout, stderr io.Writer) int {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "karousos-shard-chaos-")
		if err != nil {
			return fail(stderr, err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	sc := chaos.ShardAcceptanceScenario(shards, seed)
	res, err := chaos.RunShardChaos(dir, sc)
	if err != nil {
		return fail(stderr, err)
	}
	if verbose {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return fail(stderr, err)
		}
	}
	merge := "accepted"
	if res.Merge.Code != "" {
		merge = fmt.Sprintf("[%s] %s", res.Merge.Code, res.Merge.Reason)
	}
	fmt.Fprintf(stdout, "SHARD CHAOS %s shards=%d seed=%d: served=%d refused=%d accepted=%d unauditable=%d rejected=%d merge=%s\n",
		sc.App, sc.Shards, sc.Seed, res.Served, res.Refused, res.Accepted, res.Unauditable, res.Rejected, merge)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(stderr, "SHARD CHAOS INVARIANT VIOLATED:", v)
		}
		return 2
	}
	fmt.Fprintln(stdout, "SHARD CHAOS OK: all invariants held")
	return 0
}
