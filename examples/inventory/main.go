// Inventory: the two transactional extensions through the public API —
// range reads (Context.Scan, with predicate locking at the store) and a
// snapshot-isolation store (MVCC, first-committer-wins) whose executions the
// audit checks with Adya's G-SI phenomena over the alleged begin/commit
// order.
//
// The program stocks items, lists them with a prefix scan inside a
// transaction, audits the run at the snapshot-isolation level, and then
// shows that the same advice cannot masquerade as a serializable execution
// once concurrency has produced an SI-only anomaly.
package main

import (
	"fmt"
	"log"

	"karousos.dev/karousos"
)

const (
	fnRequest karousos.FunctionID = "inv.request"
	fnCommit  karousos.FunctionID = "inv.commit"
	evCommit  karousos.EventName  = "inv.do-commit"
)

// newInventory builds the application on a snapshot-isolation store. A
// "stock" request writes an item row; a "list" request scans the item prefix
// in one handler and commits in a continuation, so transactions genuinely
// span handlers.
func newInventory() (*karousos.App, *karousos.Store) {
	open := map[karousos.RID]*karousos.Tx{}
	app := &karousos.App{Name: "inventory", RequestEvent: "request"}
	app.Init = func(ctx *karousos.Context) {
		ctx.Register("request", fnRequest)
		ctx.Register(evCommit, fnCommit)
	}
	app.Funcs = map[karousos.FunctionID]karousos.HandlerFunc{
		fnRequest: func(ctx *karousos.Context, req *karousos.MV) {
			isStock := ctx.Branch("op-stock", ctx.Apply(func(a []karousos.V) karousos.V {
				return karousos.Str(karousos.Field(a[0], "op")) == "stock"
			}, req))
			tx := ctx.TxStart()
			if isStock {
				key := ctx.Apply(func(a []karousos.V) karousos.V {
					return "item:" + karousos.Str(karousos.Field(a[0], "sku"))
				}, req)
				val := ctx.Apply(func(a []karousos.V) karousos.V {
					return karousos.Map("qty", karousos.Field(a[0], "qty"))
				}, req)
				if !ctx.BranchBool("put-ok", ctx.Put(tx, key, val)) ||
					!ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
					ctx.Respond(ctx.Scalar(karousos.Map("status", "retry")))
					return
				}
				ctx.Respond(ctx.Scalar(karousos.Map("status", "stocked")))
				return
			}
			rows, ok := ctx.Scan(tx, ctx.Scalar("item:"))
			if !ctx.BranchBool("scan-ok", ok) {
				ctx.Respond(ctx.Scalar(karousos.Map("status", "retry")))
				return
			}
			open[ctx.RIDs()[0]] = tx
			ctx.Emit(evCommit, rows)
		},
		fnCommit: func(ctx *karousos.Context, rows *karousos.MV) {
			tx := open[ctx.RIDs()[0]]
			delete(open, ctx.RIDs()[0])
			if !ctx.BranchBool("list-commit-ok", ctx.Commit(tx)) {
				ctx.Respond(ctx.Scalar(karousos.Map("status", "retry")))
				return
			}
			ctx.Respond(ctx.Apply(func(a []karousos.V) karousos.V {
				return karousos.Map("status", "ok", "items", a[0])
			}, rows))
		},
	}
	return app, karousos.NewStore(karousos.StoreSnapshotIsolation)
}

func main() {
	spec := karousos.AppSpec{
		Name:      "inventory",
		UsesStore: true,
		Isolation: karousos.SnapshotIsolation,
		New:       newInventory,
	}

	var reqs []karousos.Request
	for i := 0; i < 30; i++ {
		rid := karousos.RID(fmt.Sprintf("r%02d", i))
		if i%3 == 2 {
			reqs = append(reqs, karousos.Request{RID: rid, Input: karousos.Map("op", "list")})
		} else {
			reqs = append(reqs, karousos.Request{RID: rid, Input: karousos.Map(
				"op", "stock", "sku", fmt.Sprintf("widget-%d", i%5), "qty", i)})
		}
	}

	run, err := karousos.Serve(spec, reqs, 8, 42, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	lastList := karousos.V(nil)
	for _, rid := range run.Trace.RIDs() {
		out := run.Trace.Outputs()[rid]
		if karousos.Field(out, "items") != nil {
			lastList = out
		}
	}
	fmt.Printf("served %d requests (%d store conflicts)\n", len(run.Trace.RIDs()), run.Conflicts)
	fmt.Printf("last list response: %s\n", karousos.FormatValue(lastList))

	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	if verdict.Err != nil {
		log.Fatalf("audit rejected honest SI run: %v", verdict.Err)
	}
	fmt.Printf("audit at snapshot isolation: ACCEPTED (%d groups, %v)\n",
		verdict.Stats.Groups, verdict.Elapsed)

	// The begin/commit order in the advice is what distinguishes SI from
	// stronger claims; dropping it must reject.
	forged := run.Karousos.Clone()
	forged.TxOrder = nil
	if v := karousos.VerifyKarousos(spec, run.Trace, forged); v.Err == nil {
		log.Fatal("advice without begin/commit order accepted at SI level")
	} else {
		fmt.Printf("advice without begin/commit order: REJECTED (%v)\n", v.Err)
	}
}
