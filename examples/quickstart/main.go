// Quickstart: serve a workload against the wiki application with Karousos
// advice collection, then audit the run. This is the end-to-end loop a
// deployer (the paper's "Cam") runs: the trace is trusted ground truth from
// the collector, the advice is untrusted output from the server, and the
// verifier decides whether the responses are explainable by the program.
package main

import (
	"fmt"
	"log"
	"os"

	"karousos.dev/karousos"
)

func main() {
	spec := karousos.WikiApp()

	// 600 requests with the paper's 25% create / 15% comment / 60% render
	// mix, served with up to 30 requests in flight.
	reqs := karousos.WikiWorkload(600, 1)
	run, err := karousos.Serve(spec, reqs, 30, 42, karousos.CollectKarousos)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	fmt.Printf("served %d requests in %v (%d store conflicts)\n",
		len(run.Trace.RIDs()), run.Elapsed, run.Conflicts)
	fmt.Printf("advice size: %.1f KiB\n", float64(run.Karousos.Size())/1024)

	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	if verdict.Err != nil {
		fmt.Printf("AUDIT REJECTED: %v\n", verdict.Err)
		os.Exit(1)
	}
	fmt.Printf("AUDIT ACCEPTED in %v: %d requests re-executed as %d groups, %d handlers re-run\n",
		verdict.Elapsed, verdict.Stats.Requests, verdict.Stats.Groups, verdict.Stats.HandlersRerun)
	fmt.Printf("execution graph: %d nodes, %d edges, acyclic\n",
		verdict.Stats.GraphNodes, verdict.Stats.GraphEdges)
}
