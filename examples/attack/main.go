// Attack: a misbehaving server tries to get bogus executions past the audit.
//
// Three attacks, all of which the verifier must reject (Soundness, §2.1):
//
//  1. Response tampering — the server answers something the program never
//     produced.
//  2. Advice forgery — the server forges a logged write's value to
//     rationalize a different response (caught by simulate-and-check).
//  3. The Figure 5 attack — the server executes each request against a
//     private copy of the state and merges the runs, yielding responses
//     that no real interleaving can produce. Every local check passes;
//     the rejection comes from a cycle in the execution graph G (§4.3).
package main

import (
	"fmt"
	"log"

	"karousos.dev/karousos"
)

func main() {
	spec := karousos.MOTDApp()
	reqs := karousos.MOTDWorkload(100, karousos.Mixed, 5)

	honest, err := karousos.Serve(spec, reqs, 10, 42, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	if v := karousos.VerifyKarousos(spec, honest.Trace, honest.Karousos); v.Err != nil {
		log.Fatalf("honest run rejected: %v", v.Err)
	}
	fmt.Println("baseline: honest run ACCEPTED")

	// Attack 1: tamper with one response in flight (the collector saw the
	// real one, so this models the server lying to the client — equivalently,
	// the trace holds the tampered response the clients actually got).
	tampered := *honest.Trace
	tampered.Events = append([]karousos.TraceEvent(nil), honest.Trace.Events...)
	for i := range tampered.Events {
		if tampered.Events[i].Kind == karousos.TraceResp {
			tampered.Events[i].Data = karousos.Map("msg", "you have been hacked", "scope", "always")
			break
		}
	}
	report("response tampering", karousos.VerifyKarousos(spec, &tampered, honest.Karousos).Err)

	// Attack 2: forge a logged write's value in the advice.
	forged := honest.Karousos.Clone()
	for id, entries := range forged.VarLogs {
		for i := range entries {
			if entries[i].Type == karousos.AccessWrite {
				forged.VarLogs[id][i].Value = karousos.Map("always", "0wned", "daily", map[string]karousos.V{}, "history", []karousos.V{})
				goto mutated
			}
		}
	}
mutated:
	report("variable-log forgery", karousos.VerifyKarousos(spec, honest.Trace, forged).Err)

	// Attack 3: Figure 5 — serve requests on private copies of the state
	// ("split brain") and merge the runs. The subtlety is the Soundness
	// definition: the verifier accepts exactly when SOME legal schedule
	// explains the observations.
	//
	// 3a. Splitting a get from a set is explainable — the get could simply
	// have run first — so the audit must ACCEPT the merge.
	getRun, err := karousos.Serve(spec, []karousos.Request{
		{RID: "g", Input: karousos.Map("op", "get", "day", "mon")},
	}, 1, 1, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	setRun, err := karousos.Serve(spec, []karousos.Request{
		{RID: "s", Input: karousos.Map("op", "set", "scope", "always", "msg", "split brain")},
	}, 1, 1, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	explainable := karousos.MergeRuns(setRun, getRun)
	if v := karousos.VerifyKarousos(spec, explainable.Trace, explainable.Karousos); v.Err != nil {
		log.Fatalf("explainable merge rejected (completeness bug): %v", v.Err)
	}
	fmt.Println("split-brain get∥set merge    ACCEPTED (a legal schedule explains it: the get ran first)")

	// 3b. Splitting two sets is NOT explainable: each claims to have
	// overwritten the initial state, but only one write can be the first —
	// the merged advice alleges an impossible variable history.
	setA, err := karousos.Serve(spec, []karousos.Request{
		{RID: "s1", Input: karousos.Map("op", "set", "scope", "always", "msg", "brain A")},
	}, 1, 1, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	setB, err := karousos.Serve(spec, []karousos.Request{
		{RID: "s2", Input: karousos.Map("op", "set", "scope", "always", "msg", "brain B")},
	}, 1, 1, karousos.CollectKarousos)
	if err != nil {
		log.Fatal(err)
	}
	impossible := karousos.MergeRuns(setA, setB)
	report("split-brain set∥set merge", karousos.VerifyKarousos(spec, impossible.Trace, impossible.Karousos).Err)
}

func report(attack string, err error) {
	if err == nil {
		log.Fatalf("%s: audit ACCEPTED a forged execution — soundness violated", attack)
	}
	fmt.Printf("%-28s REJECTED: %v\n", attack, err)
}
