// Guestbook: writing a custom auditable application against the public API.
//
// The application is a small guestbook: visitors sign it (their entry goes
// into the transactional store and a shared in-memory index), and anyone can
// read the latest entries. The point of the example is the programming
// model: all shared state flows through loggable Variables or the store, all
// control flow that depends on data goes through Branch, and per-request
// computation runs inside Apply closures — which is exactly what lets the
// same code execute under the recording server and the batched verifier.
package main

import (
	"fmt"
	"log"

	"karousos.dev/karousos"
)

// Handler function ids and event names.
const (
	fnRequest karousos.FunctionID = "guestbook.request"
	fnSign    karousos.FunctionID = "guestbook.sign"
	evSign    karousos.EventName  = "guestbook.do-sign"
)

// newGuestbook builds a fresh application instance. Each runtime (server,
// verifier) gets its own instance from this factory.
func newGuestbook() (*karousos.App, *karousos.Store) {
	var index *karousos.Variable // list of entry keys, newest last
	app := &karousos.App{
		Name:         "guestbook",
		RequestEvent: "request",
	}
	app.Init = func(ctx *karousos.Context) {
		index = ctx.VarNew("guestbook.index", ctx.Scalar([]karousos.V{}))
		ctx.Register("request", fnRequest)
		ctx.Register(evSign, fnSign)
	}
	app.Funcs = map[karousos.FunctionID]karousos.HandlerFunc{
		fnRequest: func(ctx *karousos.Context, req *karousos.MV) {
			isSign := ctx.Branch("op-sign", ctx.Apply(func(a []karousos.V) karousos.V {
				return karousos.Str(karousos.Field(a[0], "op")) == "sign"
			}, req))
			if isSign {
				ctx.Emit(evSign, req)
				return
			}
			// Read: respond with the newest entry keys from the shared index.
			idx := ctx.Read(index)
			ctx.Respond(ctx.Apply(func(a []karousos.V) karousos.V {
				l, _ := a[0].([]karousos.V)
				n := len(l)
				if n > 3 {
					l = l[n-3:]
				}
				return karousos.Map("status", "ok", "latest", l)
			}, idx))
		},
		fnSign: func(ctx *karousos.Context, req *karousos.MV) {
			key := ctx.Apply(func(a []karousos.V) karousos.V {
				return "entry:" + karousos.Str(karousos.Field(a[0], "name"))
			}, req)
			tx := ctx.TxStart()
			entry := ctx.Apply(func(a []karousos.V) karousos.V {
				return karousos.Map("name", karousos.Field(a[0], "name"), "msg", karousos.Field(a[0], "msg"))
			}, req)
			if !ctx.BranchBool("put-ok", ctx.Put(tx, key, entry)) {
				ctx.Respond(ctx.Scalar(karousos.Map("status", "retry")))
				return
			}
			if !ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
				ctx.Respond(ctx.Scalar(karousos.Map("status", "retry")))
				return
			}
			idx := ctx.Read(index)
			ctx.Write(index, ctx.Apply(func(a []karousos.V) karousos.V {
				l, _ := karousos.CloneValue(a[0]).([]karousos.V)
				return append(l, a[1])
			}, idx, key))
			ctx.Respond(ctx.Scalar(karousos.Map("status", "signed")))
		},
	}
	return app, karousos.NewStore(karousos.StoreSerializable)
}

func main() {
	spec := karousos.AppSpec{
		Name:      "guestbook",
		UsesStore: true,
		Isolation: karousos.Serializable,
		New:       newGuestbook,
	}

	var reqs []karousos.Request
	names := []string{"ada", "grace", "edsger", "barbara", "tony"}
	for i, name := range names {
		reqs = append(reqs, karousos.Request{
			RID:   karousos.RID(fmt.Sprintf("sign-%d", i)),
			Input: karousos.Map("op", "sign", "name", name, "msg", "hello from "+name),
		})
		reqs = append(reqs, karousos.Request{
			RID:   karousos.RID(fmt.Sprintf("read-%d", i)),
			Input: karousos.Map("op", "read"),
		})
	}

	run, err := karousos.Serve(spec, reqs, 4, 7, karousos.CollectKarousos)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	for _, rid := range run.Trace.RIDs() {
		fmt.Printf("%-8s → %s\n", rid, karousos.FormatValue(run.Trace.Outputs()[rid]))
	}

	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	if verdict.Err != nil {
		log.Fatalf("audit rejected an honest run: %v", verdict.Err)
	}
	fmt.Printf("\naudit accepted: %d requests in %d control-flow groups, advice %.1f KiB\n",
		verdict.Stats.Requests, verdict.Stats.Groups, float64(run.Karousos.Size())/1024)
}
