// Stacktracker: the paper's stack-dump application under contention.
//
// The run deliberately provokes transaction conflicts (many concurrent
// reports of the same dump), shows the resulting retry responses, and then
// demonstrates the paper's §6.2 observation: the Karousos verifier groups
// requests by handler *tree* while the Orochi-JS baseline needs identical
// handler *sequences*, so Karousos forms fewer re-execution groups on
// fan-out-heavy workloads.
package main

import (
	"fmt"
	"log"

	"karousos.dev/karousos"
)

func main() {
	spec := karousos.StacksApp()
	reqs := karousos.StacksWorkload(400, karousos.Mixed, 3)

	run, err := karousos.Serve(spec, reqs, 20, 42, karousos.CollectBoth)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}

	retries := 0
	for _, out := range run.Trace.Outputs() {
		if karousos.Str(karousos.Field(out, "status")) == "retry" {
			retries++
		}
	}
	fmt.Printf("served %d requests in %v; %d store conflicts, %d retry responses\n",
		len(run.Trace.RIDs()), run.Elapsed, run.Conflicts, retries)

	vk := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	vo := karousos.VerifyOrochi(spec, run.Trace, run.Orochi)
	sq := karousos.VerifySequential(spec, run.Trace)
	if vk.Err != nil || vo.Err != nil {
		log.Fatalf("audit rejected an honest run: karousos=%v orochi=%v", vk.Err, vo.Err)
	}

	fmt.Printf("\n%-22s %12s %8s\n", "verifier", "time", "groups")
	fmt.Printf("%-22s %12v %8d\n", "karousos", vk.Elapsed, vk.Stats.Groups)
	fmt.Printf("%-22s %12v %8d\n", "orochi-js", vo.Elapsed, vo.Stats.Groups)
	fmt.Printf("%-22s %12v %8s\n", "sequential re-exec", sq.Elapsed, "—")
	fmt.Printf("\nadvice: karousos %.1f KiB, orochi-js %.1f KiB\n",
		float64(run.Karousos.Size())/1024, float64(run.Orochi.Size())/1024)
	fmt.Printf("karousos batches tree-equal requests regardless of sibling order: %d vs %d groups\n",
		vk.Stats.Groups, vo.Stats.Groups)
}
