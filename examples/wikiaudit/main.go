// Wikiaudit: a miniature of the paper's evaluation on the wiki application —
// server overhead (Figure 6 style), verification time against both baselines
// (Figure 7 style), and advice size (Figure 8 style), swept over the number
// of concurrent requests.
package main

import (
	"fmt"
	"log"

	"karousos.dev/karousos"
)

func main() {
	spec := karousos.WikiApp()
	reqs := karousos.WikiWorkload(600, 1)

	fmt.Printf("%-6s %10s %10s %9s | %10s %10s %10s | %9s %9s\n",
		"conc", "unmod", "karousos", "overhead", "verify-kar", "verify-oro", "verify-seq", "adv-kar", "adv-oro")
	for _, conc := range []int{1, 15, 30, 60} {
		unmod, err := karousos.Serve(spec, reqs, conc, 42, karousos.CollectNone)
		if err != nil {
			log.Fatal(err)
		}
		run, err := karousos.Serve(spec, reqs, conc, 42, karousos.CollectBoth)
		if err != nil {
			log.Fatal(err)
		}
		vk := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
		vo := karousos.VerifyOrochi(spec, run.Trace, run.Orochi)
		sq := karousos.VerifySequential(spec, run.Trace)
		if vk.Err != nil || vo.Err != nil {
			log.Fatalf("audit rejected honest run: %v / %v", vk.Err, vo.Err)
		}
		fmt.Printf("%-6d %10v %10v %8.2fx | %10v %10v %10v | %7.0fKB %7.0fKB\n",
			conc, unmod.Elapsed.Round(100_000), run.Elapsed.Round(100_000),
			float64(run.Elapsed)/float64(unmod.Elapsed),
			vk.Elapsed.Round(100_000), vo.Elapsed.Round(100_000), sq.Elapsed.Round(100_000),
			float64(run.Karousos.Size())/1024, float64(run.Orochi.Size())/1024)
	}
}
