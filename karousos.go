// Package karousos is a from-scratch Go implementation of Karousos, the
// efficient auditing system for event-driven web applications of Tzialla,
// Wang, Zhu, Panda, and Walfish (EuroSys 2024).
//
// # The problem
//
// A principal deploys an event-driven web application on an untrusted server
// and wants assurance of execution integrity: that the responses observed in
// a trusted request/response trace could only have been produced by actually
// executing the program on the traced requests. The server additionally
// emits untrusted advice; a verifier — much weaker than the server —
// re-executes the trace in batches and either ACCEPTs (the execution is
// explainable by some legal schedule of the program, Soundness) or REJECTs.
// If the server was honest, the audit always accepts (Completeness).
//
// # What this module provides
//
//   - A KEM runtime (the paper's execution model, §3): applications are sets
//     of event handlers written against Context, with loggable variables,
//     a transactional key-value store, emit/register/unregister, branches,
//     and recorded non-determinism.
//   - The Karousos server runtime: serves requests, records the trace via a
//     trusted collector, and streams advice (handler logs, R-concurrency-
//     filtered variable logs, transaction logs, write order, tags).
//   - The Karousos verifier: the three-phase audit of the paper's Figure 14
//     (Preprocess / grouped multivalue ReExec / Postprocess with the
//     acyclicity check), plus Adya-style isolation verification of the
//     alleged transaction history.
//   - Baselines: an Orochi-JS server/verifier pair and a sequential
//     re-executor, as in the paper's evaluation.
//   - The three evaluated applications (MOTD, stack-dump logging, wiki),
//     workload generators, and an experiment harness that regenerates every
//     figure of the paper's evaluation.
//
// # Quick start
//
//	spec := karousos.WikiApp()
//	reqs := karousos.WikiWorkload(600, 1)
//	run, err := karousos.Serve(spec, reqs, 30, 42, karousos.CollectKarousos)
//	// ship run.Trace (trusted) and run.Karousos (untrusted) to the verifier
//	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
//	if verdict.Err != nil { /* the server misbehaved */ }
//
// See examples/ for runnable programs, DESIGN.md for the architecture, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package karousos

import (
	"context"
	"io"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/verifier/memo"
	"karousos.dev/karousos/internal/workload"
)

// Application model (the KEM of §3). Applications define handler functions,
// register them in Init, and perform all stateful operations through the
// Context.
type (
	// App is a KEM program; see core.App.
	App = core.App
	// Context binds handler code to an activation (or group of them).
	Context = core.Context
	// HandlerFunc is the code of one event handler.
	HandlerFunc = core.HandlerFunc
	// Variable is a loggable program variable handle.
	Variable = core.Variable
	// Tx is an open transaction handle.
	Tx = core.Tx
	// MV is a multivalue (SIMD-on-demand batched value).
	MV = mv.MV
	// V is the dynamic value domain (JSON-like).
	V = value.V

	// RID identifies a request; FunctionID names handler code; EventName
	// names an event type.
	RID        = core.RID
	FunctionID = core.FunctionID
	EventName  = core.EventName
)

// Serving and auditing.
type (
	// Request is one incoming request.
	Request = server.Request
	// Trace is the trusted ground-truth request/response trace.
	Trace = trace.Trace
	// Advice is the untrusted advice a server ships to the verifier.
	Advice = advice.Advice
	// AppSpec describes an auditable application (factory + isolation).
	AppSpec = harness.AppSpec
	// ServeResult is a serving run's trace, advice, and timings.
	ServeResult = harness.ServeResult
	// VerifyResult is one audit's verdict, cost, and statistics.
	VerifyResult = harness.VerifyResult
	// SequentialResult is the sequential-replay baseline's outcome.
	SequentialResult = harness.SequentialResult
	// Store is the transactional KV substrate.
	Store = kvstore.Store
	// TraceEvent is one REQ/RESP entry of the trace.
	TraceEvent = trace.Event
	// Server is the online runtime for custom applications.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// ServerResult is a Server run's raw output.
	ServerResult = server.Result
)

// Trace event kinds and variable-log access types, for tests and tools that
// inspect traces and advice.
const (
	TraceReq    = trace.Req
	TraceResp   = trace.Resp
	AccessRead  = advice.AccessRead
	AccessWrite = advice.AccessWrite
)

// Collection modes for Serve.
const (
	CollectNone     = harness.CollectNone
	CollectKarousos = harness.CollectKarousos
	CollectOrochi   = harness.CollectOrochi
	CollectBoth     = harness.CollectBoth
)

// Isolation levels for application stores.
const (
	Serializable      = adya.Serializable
	ReadCommitted     = adya.ReadCommitted
	ReadUncommitted   = adya.ReadUncommitted
	SnapshotIsolation = adya.SnapshotIsolation
)

// MOTDApp returns the message-of-the-day model application (§6).
func MOTDApp() AppSpec { return harness.MOTDApp() }

// StacksApp returns the stack-dump logging model application (§6).
func StacksApp() AppSpec { return harness.StacksApp() }

// WikiApp returns the wiki application (§6).
func WikiApp() AppSpec { return harness.WikiApp() }

// Serve runs reqs through the server runtime at the given admission
// concurrency and advice-collection mode, returning the trusted trace and
// the collected advice.
func Serve(spec AppSpec, reqs []Request, concurrency int, seed int64, mode harness.Collect) (*ServeResult, error) {
	return harness.Serve(spec, reqs, concurrency, seed, mode)
}

// VerifyKarousos audits (trace, advice) with the Karousos verifier; a nil
// Err in the result means the audit accepted.
func VerifyKarousos(spec AppSpec, tr *Trace, adv *Advice) *VerifyResult {
	return harness.VerifyKarousos(spec, tr, adv)
}

// VerifyOrochi audits with the Orochi-JS baseline verifier.
func VerifyOrochi(spec AppSpec, tr *Trace, adv *Advice) *VerifyResult {
	return harness.VerifyOrochi(spec, tr, adv)
}

// VerifyOptions selects the audit configuration beyond the app spec; see
// harness.VerifyOptions. The zero value is the Karousos verifier, unbounded,
// at GOMAXPROCS workers.
type VerifyOptions = harness.VerifyOptions

// VerifyWith audits with explicit options — notably Workers, the audit's
// parallelism. The verdict, reject code, and Stats are identical at every
// worker count; only wall-clock time changes.
func VerifyWith(spec AppSpec, tr *Trace, adv *Advice, opt VerifyOptions) *VerifyResult {
	return harness.VerifyWith(spec, tr, adv, opt)
}

// VerifySequential replays the trace one request at a time with no advice.
func VerifySequential(spec AppSpec, tr *Trace) *SequentialResult {
	return harness.VerifySequential(spec, tr)
}

// Audit runs the Karousos audit directly against a custom application (one
// not wrapped in an AppSpec). app must be a fresh instance; isolation is the
// level the application's store is expected to provide.
func Audit(app *App, isolation adya.Level, tr *Trace, adv *Advice) error {
	_, err := verifier.Audit(verifier.Config{
		App: app, Mode: advice.ModeKarousos, Isolation: isolation,
	}, tr, adv)
	return err
}

// NewStore returns a transactional KV store at the given isolation level for
// use with custom applications.
func NewStore(level kvstore.Isolation) *Store { return kvstore.New(level) }

// Store isolation levels.
const (
	StoreSerializable      = kvstore.Serializable
	StoreReadCommitted     = kvstore.ReadCommitted
	StoreReadUncommitted   = kvstore.ReadUncommitted
	StoreSnapshotIsolation = kvstore.SnapshotIsolation
)

// NewServer builds a server runtime for a custom application; see
// ServerConfig for the knobs.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// MergeRuns combines two serving runs into one alleged run, as a
// split-brain server would; see harness.MergeRuns.
func MergeRuns(a, b *ServeResult) *ServeResult { return harness.MergeRuns(a, b) }

// Workload generators (§6 "Workloads").
var (
	// ReadHeavy is 90% reads / 10% writes.
	ReadHeavy = workload.ReadHeavy
	// WriteHeavy is 90% writes / 10% reads.
	WriteHeavy = workload.WriteHeavy
	// Mixed is 50/50.
	Mixed = workload.Mixed
)

// MOTDWorkload generates n MOTD requests with the given mix.
func MOTDWorkload(n int, mix workload.Mix, seed int64) []Request {
	return workload.MOTD(n, mix, seed)
}

// StacksWorkload generates n stack-dump requests with the given mix (10% of
// reports are new dumps, as in the paper).
func StacksWorkload(n int, mix workload.Mix, seed int64) []Request {
	return workload.Stacks(n, mix, seed, workload.DefaultStacksOptions())
}

// WikiWorkload generates n wiki requests with the paper's 25/15/60 mix.
func WikiWorkload(n int, seed int64) []Request {
	return workload.Wiki(n, seed)
}

// Value helpers for application authors (the dynamic domain is JSON-like:
// nil, bool, float64, string, []V, map[string]V).
var (
	// Map builds a map value from alternating key/value arguments.
	Map = value.Map
	// List builds a list value.
	List = value.List
	// Equal is deep equality on values.
	Equal = value.Equal
	// CloneValue deep-copies a value.
	CloneValue = value.Clone
	// FormatValue renders a value compactly for logs and errors.
	FormatValue = value.String
)

// Field returns m[k] when v is a map value, else nil.
func Field(v V, k string) V { return appkit.Field(v, k) }

// Str coerces a value to string ("" if not a string).
func Str(v V) string { return appkit.Str(v) }

// Num coerces a value to float64 (0 if not a number).
func Num(v V) float64 { return appkit.Num(v) }

// Bool coerces a value to bool (false if not a bool).
func Bool(v V) bool { return appkit.Bool(v) }

// With returns a copy of map value v with key k set to val.
func With(v V, k string, val V) map[string]V { return appkit.With(v, k, val) }

// UnmarshalAdvice decodes advice from its binary wire format (the output of
// Advice.MarshalBinary), validating structure but — by design — not
// semantics: advice is untrusted and the audit judges it.
func UnmarshalAdvice(data []byte) (*Advice, error) { return advice.UnmarshalBinary(data) }

// VerifyKarousosUnbatched audits with batching disabled (every request in a
// singleton group) — the ablation that isolates what grouped re-execution
// buys; see harness.VerifyKarousosUnbatched.
func VerifyKarousosUnbatched(spec AppSpec, tr *Trace, adv *Advice) *VerifyResult {
	return harness.VerifyKarousosUnbatched(spec, tr, adv)
}

// VerifyKarousosWithGraph audits like VerifyKarousos and additionally writes
// the execution graph G in Graphviz DOT format to w — with the offending
// cycle highlighted when the audit rejects on acyclicity.
func VerifyKarousosWithGraph(spec AppSpec, tr *Trace, adv *Advice, w io.Writer) *VerifyResult {
	return harness.VerifyWith(spec, tr, adv, VerifyOptions{DumpGraph: w})
}

// Rejection taxonomy: every audit rejection carries a machine-readable
// reason code; see core.RejectCode for the classification rules.
type RejectCode = core.RejectCode

// The rejection reason codes.
const (
	RejectMalformedAdvice    = core.RejectMalformedAdvice
	RejectLogMismatch        = core.RejectLogMismatch
	RejectGraphCycle         = core.RejectGraphCycle
	RejectIsolationViolation = core.RejectIsolationViolation
	RejectOutputMismatch     = core.RejectOutputMismatch
	RejectResourceLimit      = core.RejectResourceLimit
	RejectInternalFault      = core.RejectInternalFault
)

// RejectCodeOf extracts the reason code from an audit error; "" when the
// error is not an audit rejection.
func RejectCodeOf(err error) RejectCode { return core.RejectCodeOf(err) }

// Limits bounds the resources one audit may consume; the zero value is
// unbounded, DefaultLimits is production-shaped.
type Limits = verifier.Limits

// DefaultLimits returns the production-shaped resource bounds.
func DefaultLimits() Limits { return verifier.DefaultLimits() }

// VerifyKarousosLimits audits like VerifyKarousos under explicit resource
// bounds: the serialized advice size is checked before decoding, and the
// audit itself runs under lim's deadline and graph budgets, rejecting with
// RejectResourceLimit when exceeded.
func VerifyKarousosLimits(spec AppSpec, tr *Trace, adv *Advice, lim Limits) *VerifyResult {
	return harness.VerifyKarousosLimits(spec, tr, adv, lim)
}

// FaultOp is one operator of the fault-injection catalogue; see
// internal/faultinject.
type FaultOp = faultinject.Op

// FaultCatalogue returns every fault-injection operator.
func FaultCatalogue() []FaultOp { return faultinject.Catalogue() }

// ApplyFault corrupts wire-format advice per an "op:seed" spec (seed
// defaults to 0) from the fault-injection catalogue, deterministically.
func ApplyFault(spec string, wire []byte) ([]byte, error) {
	op, seed, err := faultinject.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return op.Apply(seed, wire)
}

// Continuous auditing (the epoch pipeline): a collector serves an
// application over HTTP, recording the trusted trace into a durable epoch
// log; an incremental auditor tails the log and audits each sealed epoch
// with the dictionary state carried from the previous one. See
// cmd/karousos-auditd and DESIGN.md §10.
type (
	// CarryState is the trusted cross-epoch dictionary state an accepting
	// audit produces for the next epoch's audit.
	CarryState = verifier.CarryState
	// AuditorStatus is the incremental auditor's counters.
	AuditorStatus = auditd.Status
	// EpochReject is the machine-readable per-epoch rejection.
	EpochReject = auditd.Reject
	// PipelineOptions configures RunPipeline.
	PipelineOptions = auditd.PipelineOptions
	// PipelineResult summarizes a pipeline run.
	PipelineResult = auditd.PipelineResult
	// EpochManifest describes one sealed epoch on disk.
	EpochManifest = epochlog.Manifest
)

// AuditCarry audits one epoch like Audit but additionally takes the carry
// produced by the previous epoch's audit (nil for the first epoch) and
// returns the next epoch's carry.
func AuditCarry(ctx context.Context, cfg verifier.Config, tr *Trace, adv *Advice) (verifier.Stats, *CarryState, error) {
	return verifier.AuditCarry(ctx, cfg, tr, adv)
}

// AuditEpochDir audits every sealed epoch of an epoch log directory in
// order, resolving the application from the directory's sidecar. The error,
// if any, is an *EpochReject for server misbehavior and an ordinary error
// for infrastructure failure. workers is each epoch audit's parallelism
// (0 = GOMAXPROCS, 1 = the sequential engine); the verdict is identical at
// every setting. memoMaxBytes > 0 enables the cross-epoch re-execution memo
// cache (DESIGN.md §18) with that byte budget — a pure performance lever,
// the verdict is identical with it on or off.
func AuditEpochDir(ctx context.Context, dir string, lim Limits, workers, memoMaxBytes int) (AuditorStatus, error) {
	aud, err := auditd.New(auditd.Config{Dir: dir, Limits: lim, AuditWorkers: workers, MemoMaxBytes: memoMaxBytes})
	if err != nil {
		return AuditorStatus{}, err
	}
	_, err = aud.RunOnce(ctx)
	return aud.Status(), err
}

// MemoCache is the content-addressed re-execution memo cache the verifier
// consults when VerifyOptions.Memo (or auditd's MemoMaxBytes) is set; see
// DESIGN.md §18. One cache is threaded through consecutive epoch audits;
// entries are keyed by the full input closure of a tag group, so a hit
// replays the group's recorded effects instead of re-executing it.
type MemoCache = memo.Cache

// NewMemoCache returns a memo cache with the given byte budget
// (maxBytes <= 0 means unbounded).
func NewMemoCache(maxBytes int) *MemoCache { return memo.NewCache(maxBytes) }

// RunPipeline serves the workload through the HTTP collector on a loopback
// listener while the incremental auditor follows the epoch log, and returns
// once every sealed epoch is audited (or the first epoch rejects).
func RunPipeline(ctx context.Context, spec AppSpec, reqs []Request, opts PipelineOptions) (*PipelineResult, error) {
	return auditd.RunPipeline(ctx, spec, reqs, opts)
}

// ListSealedEpochs lists an epoch log directory's sealed manifests.
func ListSealedEpochs(dir string) ([]EpochManifest, error) { return epochlog.ListSealed(dir) }
