module karousos.dev/karousos

go 1.22
