// Benchmarks: one testing.B benchmark per panel of every figure in the
// paper's evaluation (Figures 6–12, §6 and Appendix B). Each benchmark
// measures the quantity the figure plots — server processing time with and
// without advice collection, verification time for the three verifiers, or
// advice size (reported as bytes/op metrics) — at a representative
// concurrency. The full concurrency sweeps live in cmd/karousos-bench, which
// shares the same harness code.
//
// Run with:
//
//	go test -bench=. -benchmem
package karousos_test

import (
	"fmt"
	"runtime"
	"testing"

	"karousos.dev/karousos"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

// benchRequests keeps go-bench iterations affordable while preserving the
// figures' shapes; cmd/karousos-bench defaults to the paper's 600.
const benchRequests = 300

func workloadFor(app string, mix workload.Mix, n int, seed int64) (harness.AppSpec, []server.Request) {
	switch app {
	case "motd":
		return harness.MOTDApp(), workload.MOTD(n, mix, seed)
	case "stacks":
		return harness.StacksApp(), workload.Stacks(n, mix, seed, workload.DefaultStacksOptions())
	case "wiki":
		return harness.WikiApp(), workload.Wiki(n, seed)
	}
	panic("unknown app")
}

// benchServe measures the serving path (Figure 6 and the (a) panels of
// Figures 9–12): processing time of the measured requests at the given
// collection mode, after warm-up.
func benchServe(b *testing.B, app string, mix workload.Mix, conc int, mode harness.Collect) {
	b.Helper()
	warmup := benchRequests / 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, reqs := workloadFor(app, mix, benchRequests, 1)
		if _, err := harness.ServeWarm(spec, reqs, warmup, conc, int64(i), mode); err != nil {
			b.Fatal(err)
		}
	}
}

// benchVerify measures one verifier's turnaround (Figure 7 and the (b)
// panels): the serve happens outside the timed region.
func benchVerify(b *testing.B, app string, mix workload.Mix, conc int, verifier string) {
	b.Helper()
	spec, reqs := workloadFor(app, mix, benchRequests, 1)
	run, err := harness.Serve(spec, reqs, conc, 42, harness.CollectBoth)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch verifier {
		case "karousos":
			if v := harness.VerifyKarousos(spec, run.Trace, run.Karousos); v.Err != nil {
				b.Fatal(v.Err)
			}
		case "orochi":
			if v := harness.VerifyOrochi(spec, run.Trace, run.Orochi); v.Err != nil {
				b.Fatal(v.Err)
			}
		case "sequential":
			if v := harness.VerifySequential(spec, run.Trace); v.Err != nil {
				b.Fatal(v.Err)
			}
		}
	}
}

// benchAdviceSize reports advice sizes (Figure 8 and the (c) panels) as
// custom metrics; the measured operation is advice serialization, which is
// the unit of shipping cost.
func benchAdviceSize(b *testing.B, app string, mix workload.Mix, conc int) {
	b.Helper()
	spec, reqs := workloadFor(app, mix, benchRequests, 1)
	run, err := harness.Serve(spec, reqs, conc, 42, harness.CollectBoth)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var k, o int
	for i := 0; i < b.N; i++ {
		k = run.Karousos.Size()
		o = run.Orochi.Size()
	}
	b.ReportMetric(float64(k), "karousos-bytes")
	b.ReportMetric(float64(o), "orochi-bytes")
	b.ReportMetric(float64(k)/float64(o), "size-ratio")
}

// --- Figure 6: server overheads ---

func BenchmarkFig6aMOTDWriteHeavyServerUnmodified(b *testing.B) {
	benchServe(b, "motd", workload.WriteHeavy, 30, harness.CollectNone)
}
func BenchmarkFig6aMOTDWriteHeavyServerKarousos(b *testing.B) {
	benchServe(b, "motd", workload.WriteHeavy, 30, harness.CollectKarousos)
}
func BenchmarkFig6bStacksReadHeavyServerUnmodified(b *testing.B) {
	benchServe(b, "stacks", workload.ReadHeavy, 30, harness.CollectNone)
}
func BenchmarkFig6bStacksReadHeavyServerKarousos(b *testing.B) {
	benchServe(b, "stacks", workload.ReadHeavy, 30, harness.CollectKarousos)
}
func BenchmarkFig6cWikiServerUnmodified(b *testing.B) {
	benchServe(b, "wiki", workload.Mixed, 30, harness.CollectNone)
}
func BenchmarkFig6cWikiServerKarousos(b *testing.B) {
	benchServe(b, "wiki", workload.Mixed, 30, harness.CollectKarousos)
}

// --- Figure 7: verification time ---

func BenchmarkFig7aMOTDWriteHeavyVerifyKarousos(b *testing.B) {
	benchVerify(b, "motd", workload.WriteHeavy, 30, "karousos")
}
func BenchmarkFig7aMOTDWriteHeavyVerifyOrochi(b *testing.B) {
	benchVerify(b, "motd", workload.WriteHeavy, 30, "orochi")
}
func BenchmarkFig7aMOTDWriteHeavyVerifySequential(b *testing.B) {
	benchVerify(b, "motd", workload.WriteHeavy, 30, "sequential")
}
func BenchmarkFig7bStacksReadHeavyVerifyKarousos(b *testing.B) {
	benchVerify(b, "stacks", workload.ReadHeavy, 30, "karousos")
}
func BenchmarkFig7bStacksReadHeavyVerifyOrochi(b *testing.B) {
	benchVerify(b, "stacks", workload.ReadHeavy, 30, "orochi")
}
func BenchmarkFig7bStacksReadHeavyVerifySequential(b *testing.B) {
	benchVerify(b, "stacks", workload.ReadHeavy, 30, "sequential")
}
func BenchmarkFig7cWikiVerifyKarousos(b *testing.B) {
	benchVerify(b, "wiki", workload.Mixed, 30, "karousos")
}
func BenchmarkFig7cWikiVerifyOrochi(b *testing.B) {
	benchVerify(b, "wiki", workload.Mixed, 30, "orochi")
}
func BenchmarkFig7cWikiVerifySequential(b *testing.B) {
	benchVerify(b, "wiki", workload.Mixed, 30, "sequential")
}

// --- Figure 8: advice size ---

func BenchmarkFig8MOTDWriteHeavyAdviceSize(b *testing.B) {
	benchAdviceSize(b, "motd", workload.WriteHeavy, 30)
}
func BenchmarkFig8WikiAdviceSize(b *testing.B) {
	benchAdviceSize(b, "wiki", workload.Mixed, 30)
}

// --- Figures 9–12 (Appendix B): remaining workloads, panels a/b/c each ---

func BenchmarkFig9aMOTDMixedServerKarousos(b *testing.B) {
	benchServe(b, "motd", workload.Mixed, 30, harness.CollectKarousos)
}
func BenchmarkFig9bMOTDMixedVerifyKarousos(b *testing.B) {
	benchVerify(b, "motd", workload.Mixed, 30, "karousos")
}
func BenchmarkFig9bMOTDMixedVerifySequential(b *testing.B) {
	benchVerify(b, "motd", workload.Mixed, 30, "sequential")
}
func BenchmarkFig9cMOTDMixedAdviceSize(b *testing.B) {
	benchAdviceSize(b, "motd", workload.Mixed, 30)
}

func BenchmarkFig10aMOTDReadHeavyServerKarousos(b *testing.B) {
	benchServe(b, "motd", workload.ReadHeavy, 30, harness.CollectKarousos)
}
func BenchmarkFig10bMOTDReadHeavyVerifyKarousos(b *testing.B) {
	benchVerify(b, "motd", workload.ReadHeavy, 30, "karousos")
}
func BenchmarkFig10bMOTDReadHeavyVerifySequential(b *testing.B) {
	benchVerify(b, "motd", workload.ReadHeavy, 30, "sequential")
}
func BenchmarkFig10cMOTDReadHeavyAdviceSize(b *testing.B) {
	benchAdviceSize(b, "motd", workload.ReadHeavy, 30)
}

func BenchmarkFig11aStacksMixedServerKarousos(b *testing.B) {
	benchServe(b, "stacks", workload.Mixed, 30, harness.CollectKarousos)
}
func BenchmarkFig11bStacksMixedVerifyKarousos(b *testing.B) {
	benchVerify(b, "stacks", workload.Mixed, 30, "karousos")
}
func BenchmarkFig11bStacksMixedVerifyOrochi(b *testing.B) {
	benchVerify(b, "stacks", workload.Mixed, 30, "orochi")
}
func BenchmarkFig11cStacksMixedAdviceSize(b *testing.B) {
	benchAdviceSize(b, "stacks", workload.Mixed, 30)
}

func BenchmarkFig12aStacksWriteHeavyServerKarousos(b *testing.B) {
	benchServe(b, "stacks", workload.WriteHeavy, 30, harness.CollectKarousos)
}
func BenchmarkFig12bStacksWriteHeavyVerifyKarousos(b *testing.B) {
	benchVerify(b, "stacks", workload.WriteHeavy, 30, "karousos")
}
func BenchmarkFig12bStacksWriteHeavyVerifyOrochi(b *testing.B) {
	benchVerify(b, "stacks", workload.WriteHeavy, 30, "orochi")
}
func BenchmarkFig12cStacksWriteHeavyAdviceSize(b *testing.B) {
	benchAdviceSize(b, "stacks", workload.WriteHeavy, 30)
}

// --- component microbenchmarks ---

// BenchmarkAuditComponents breaks one wiki audit into its phases via the
// public API, for profiling regressions.
func BenchmarkAuditComponents(b *testing.B) {
	spec := karousos.WikiApp()
	reqs := karousos.WikiWorkload(benchRequests, 1)
	run, err := karousos.Serve(spec, reqs, 30, 42, karousos.CollectKarousos)
	if err != nil {
		b.Fatal(err)
	}
	wire := run.Karousos.MarshalBinary()
	b.Run("advice-decode", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			if _, err := karousos.UnmarshalAdvice(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("advice-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = run.Karousos.MarshalBinary()
		}
	})
	b.Run("full-audit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := karousos.VerifyKarousos(spec, run.Trace, run.Karousos); v.Err != nil {
				b.Fatal(v.Err)
			}
		}
	})
}

// BenchmarkConcurrencySweep reports Karousos verification time across the
// paper's concurrency axis crossed with the audit-worker axis in one run
// (sub-benchmarks per level). The worker axis is the parallel engine's
// scaling curve: workers-1 is the sequential engine, higher levels replay
// tag groups concurrently with a deterministic merge.
func BenchmarkConcurrencySweep(b *testing.B) {
	spec := karousos.WikiApp()
	workerLevels := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		workerLevels = append(workerLevels, g)
	}
	for _, conc := range []int{1, 15, 30, 60} {
		reqs := karousos.WikiWorkload(benchRequests, 1)
		run, err := karousos.Serve(spec, reqs, conc, 42, karousos.CollectKarousos)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range workerLevels {
			b.Run(fmt.Sprintf("conc-%d-workers-%d", conc, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v := karousos.VerifyWith(spec, run.Trace, run.Karousos, karousos.VerifyOptions{Workers: workers})
					if v.Err != nil {
						b.Fatal(v.Err)
					}
				}
			})
		}
	}
}

// --- ablation: batched vs singleton-group re-execution (§4.1 trade-off) ---

func BenchmarkAblationWikiVerifyBatched(b *testing.B) {
	spec := harness.WikiApp()
	_, reqs := workloadFor("wiki", workload.Mixed, benchRequests, 1)
	run, err := harness.Serve(spec, reqs, 30, 42, harness.CollectKarousos)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := harness.VerifyKarousos(spec, run.Trace, run.Karousos); v.Err != nil {
			b.Fatal(v.Err)
		}
	}
}

func BenchmarkAblationWikiVerifyUnbatched(b *testing.B) {
	spec := harness.WikiApp()
	_, reqs := workloadFor("wiki", workload.Mixed, benchRequests, 1)
	run, err := harness.Serve(spec, reqs, 30, 42, harness.CollectKarousos)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := harness.VerifyKarousosUnbatched(spec, run.Trace, run.Karousos); v.Err != nil {
			b.Fatal(v.Err)
		}
	}
}

// --- extension: parallel dispatch (multi-threaded KEM runtime) ---

func BenchmarkParallelServerWiki(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, reqs := workloadFor("wiki", workload.Mixed, benchRequests, 1)
				app, store := spec.New()
				srv := karousos.NewServer(karousos.ServerConfig{
					App: app, Store: store, Seed: int64(i), Workers: workers, CollectKarousos: true,
				})
				if _, err := srv.Run(reqs, 30); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
